//! Span-based phase tracing: RAII timers with nested paths, monotonic
//! timestamps, thread-tagged events, and a JSON-lines exporter.
//!
//! A [`Span`] opened while another span is live on the same thread
//! becomes its child: paths join with `/`, so the harness's phases
//! aggregate under keys like `run_all/fig04/measure/replay`. Dropping
//! (or [`Span::finish`]ing) a span adds its wall time to the tracer's
//! per-path totals; [`Tracer::phase_tree`] turns those totals into a
//! tree and [`Tracer::render_report`] prints the human breakdown:
//!
//! ```text
//! run_all                          2.134s  100.0%
//!   fig04                          0.412s   19.3%
//!     measure                      0.391s   18.3%
//!       live                       0.210s    9.8%
//!       replay                     0.102s    4.8%
//! ```
//!
//! When `CODELAYOUT_TRACE_OUT` names a file (see
//! [`Tracer::init_export_from_env`]), every span begin/end is appended
//! as one JSON line `{"ev":"B"|"E","path":...,"thread":...,"t_us":...}`
//! with timestamps in microseconds since the process epoch — a
//! trace-event log that external tools can tail while a sweep runs.

use crate::now_ns;
use serde_json::{json, Value};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

pub use crate::env::TRACE_OUT_ENV;

thread_local! {
    /// The live span names on this thread, innermost last.
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Aggregated wall time for one phase path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Total nanoseconds across all completed spans at this path.
    pub total_ns: u64,
    /// Number of completed spans at this path.
    pub count: u64,
}

/// The tracer: per-path phase totals plus the optional event exporter.
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    phases: Mutex<BTreeMap<String, PhaseStat>>,
    export: Mutex<Option<BufWriter<File>>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// A new, enabled tracer with no exporter.
    pub fn new() -> Self {
        Tracer {
            enabled: AtomicBool::new(true),
            phases: Mutex::new(BTreeMap::new()),
            export: Mutex::new(None),
        }
    }

    /// Turns span recording on or off. Inert spans cost one relaxed
    /// atomic load to create and nothing to drop.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether spans are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Routes span begin/end events to a JSON-lines file. Any previous
    /// exporter is dropped (flushing it).
    ///
    /// # Errors
    /// Returns the I/O error if the file cannot be created.
    pub fn init_export(&self, path: &str) -> std::io::Result<()> {
        let file = File::create(path)?;
        *self.export.lock().expect("tracer export poisoned") = Some(BufWriter::new(file));
        Ok(())
    }

    /// Initializes the exporter from [`crate::run_env`]'s
    /// `CODELAYOUT_TRACE_OUT` when set; prints a warning (and records
    /// nothing) when the file cannot be created.
    pub fn init_export_from_env(&self) {
        if let Some(path) = crate::run_env().trace_out.as_deref() {
            if let Err(e) = self.init_export(path) {
                eprintln!("warning: cannot open {TRACE_OUT_ENV}={path}: {e}");
            }
        }
    }

    /// Opens a span named `name`, nested under this thread's live span
    /// (if any). The span records on drop or [`Span::finish`].
    pub fn span<'t>(&'t self, name: &str) -> Span<'t> {
        if !self.is_enabled() {
            return Span {
                tracer: self,
                path: String::new(),
                start_ns: 0,
                active: false,
            };
        }
        let path = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = if let Some(parent) = stack.last() {
                format!("{parent}/{name}")
            } else {
                name.to_string()
            };
            stack.push(path.clone());
            path
        });
        let start_ns = now_ns();
        self.export_event("B", &path, start_ns);
        Span {
            tracer: self,
            path,
            start_ns,
            active: true,
        }
    }

    /// Writes one instant event to the exporter (no phase accounting).
    /// Free when no exporter is installed.
    pub fn instant(&self, name: &str) {
        if self.is_enabled() {
            self.export_event("i", name, now_ns());
        }
    }

    /// Writes one structured record event to the exporter: a JSON line
    /// `{"ev":"O","path":name,"thread":...,"t_us":...,"data":payload}`
    /// (`O` for object, mirroring the trace-event format's instant
    /// events with arguments). The serving loop streams its epoch
    /// records through this. Free when no exporter is installed; no
    /// phase accounting.
    pub fn event(&self, name: &str, payload: Value) {
        if !self.is_enabled() {
            return;
        }
        let mut guard = self.export.lock().expect("tracer export poisoned");
        if let Some(w) = guard.as_mut() {
            let thread = std::thread::current();
            let tag = match thread.name() {
                Some(n) => n.to_string(),
                None => format!("{:?}", thread.id()),
            };
            let line = json!({
                "ev": "O",
                "path": name,
                "thread": tag,
                "t_us": now_ns() / 1_000,
                "data": payload,
            });
            let _ = writeln!(
                w,
                "{}",
                serde_json::to_string(&line).expect("span event json")
            );
        }
    }

    fn export_event(&self, ev: &str, path: &str, t_ns: u64) {
        let mut guard = self.export.lock().expect("tracer export poisoned");
        if let Some(w) = guard.as_mut() {
            let thread = std::thread::current();
            let tag = match thread.name() {
                Some(n) => n.to_string(),
                None => format!("{:?}", thread.id()),
            };
            let line = json!({
                "ev": ev,
                "path": path,
                "thread": tag,
                "t_us": t_ns / 1_000,
            });
            let _ = writeln!(
                w,
                "{}",
                serde_json::to_string(&line).expect("span event json")
            );
        }
    }

    fn record(&self, path: &str, dur_ns: u64) {
        let mut phases = self.phases.lock().expect("tracer phases poisoned");
        let stat = phases.entry(path.to_string()).or_default();
        stat.total_ns += dur_ns;
        stat.count += 1;
    }

    /// Flushes the event exporter, if any.
    pub fn flush(&self) {
        if let Some(w) = self.export.lock().expect("tracer export poisoned").as_mut() {
            let _ = w.flush();
        }
    }

    /// Clears all recorded phases (exporter and enabled flag are kept).
    pub fn reset(&self) {
        self.phases.lock().expect("tracer phases poisoned").clear();
    }

    /// All completed phase paths with their totals, in path order.
    pub fn phase_snapshot(&self) -> Vec<(String, PhaseStat)> {
        self.phases
            .lock()
            .expect("tracer phases poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// The completed phases as a forest (children in path order). Spans
    /// from worker threads (opened with an empty stack) appear as extra
    /// roots next to the main thread's root phase.
    pub fn phase_tree(&self) -> Vec<PhaseNode> {
        build_tree(&self.phase_snapshot())
    }

    /// Renders the phase breakdown as an indented text tree with
    /// percentages relative to each root. Each node that has timed
    /// children accounts any remainder to an `(untracked)` line, so the
    /// percentages always add up.
    pub fn render_report(&self) -> String {
        let tree = self.phase_tree();
        let mut out = String::new();
        for root in &tree {
            render_node(&mut out, root, root.stat.total_ns.max(1), 0);
        }
        out
    }
}

/// One node of the aggregated phase tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseNode {
    /// Final path segment (phase name).
    pub name: String,
    /// Aggregated wall time and completion count.
    pub stat: PhaseStat,
    /// Child phases in path order.
    pub children: Vec<PhaseNode>,
}

impl PhaseNode {
    /// Fraction of this node's time covered by its direct children,
    /// in percent (100.0 for leaves).
    pub fn coverage_pct(&self) -> f64 {
        if self.children.is_empty() {
            return 100.0;
        }
        if self.stat.total_ns == 0 {
            return 0.0;
        }
        let covered: u64 = self.children.iter().map(|c| c.stat.total_ns).sum();
        100.0 * covered.min(self.stat.total_ns) as f64 / self.stat.total_ns as f64
    }

    /// JSON rendering used in the run manifest: name, wall time,
    /// percentage of `root_ns`, completion count, children.
    pub fn to_json(&self, root_ns: u64) -> Value {
        let children: Vec<Value> = self.children.iter().map(|c| c.to_json(root_ns)).collect();
        json!({
            "name": self.name.clone(),
            "wall_ns": self.stat.total_ns,
            "pct": round2(100.0 * self.stat.total_ns as f64 / root_ns.max(1) as f64),
            "count": self.stat.count,
            "children": children,
        })
    }
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

/// Builds the phase forest from `(path, stat)` pairs. Parent paths that
/// were never directly timed get a zero stat (their children still
/// attach under them).
pub fn build_tree(snapshot: &[(String, PhaseStat)]) -> Vec<PhaseNode> {
    let mut roots: Vec<PhaseNode> = Vec::new();
    for (path, stat) in snapshot {
        let segs: Vec<&str> = path.split('/').collect();
        let mut level = &mut roots;
        for (i, seg) in segs.iter().enumerate() {
            let pos = match level.iter().position(|n| n.name == *seg) {
                Some(p) => p,
                None => {
                    level.push(PhaseNode {
                        name: (*seg).to_string(),
                        stat: PhaseStat::default(),
                        children: Vec::new(),
                    });
                    level.len() - 1
                }
            };
            if i == segs.len() - 1 {
                level[pos].stat = *stat;
            }
            level = &mut level[pos].children;
        }
    }
    roots
}

fn render_node(out: &mut String, node: &PhaseNode, root_ns: u64, depth: usize) {
    let pct = 100.0 * node.stat.total_ns as f64 / root_ns as f64;
    let label = format!("{}{}", "  ".repeat(depth), node.name);
    let _ = writeln!(
        out,
        "{label:<40} {:>10}  {pct:>5.1}%{}",
        fmt_dur(node.stat.total_ns),
        if node.stat.count > 1 {
            format!("  (x{})", node.stat.count)
        } else {
            String::new()
        }
    );
    for child in &node.children {
        render_node(out, child, root_ns, depth + 1);
    }
    if !node.children.is_empty() {
        let covered: u64 = node.children.iter().map(|c| c.stat.total_ns).sum();
        let rest = node.stat.total_ns.saturating_sub(covered);
        // Only worth a line when the gap is visible at 0.1% of the root.
        if rest * 1000 > root_ns {
            let pct = 100.0 * rest as f64 / root_ns as f64;
            let label = format!("{}(untracked)", "  ".repeat(depth + 1));
            let _ = writeln!(out, "{label:<40} {:>10}  {pct:>5.1}%", fmt_dur(rest));
        }
    }
}

fn fmt_dur(ns: u64) -> String {
    let d = Duration::from_nanos(ns);
    if ns >= 1_000_000_000 {
        format!("{:.3}s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{}us", ns / 1_000)
    }
}

/// An RAII phase timer from [`Tracer::span`]. Records its wall time
/// into the tracer when dropped or explicitly [`finish`](Span::finish)ed.
#[derive(Debug)]
pub struct Span<'t> {
    tracer: &'t Tracer,
    path: String,
    start_ns: u64,
    active: bool,
}

impl<'t> Span<'t> {
    /// This span's full `/`-joined path (empty for inert spans).
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Wall time since the span opened.
    pub fn elapsed(&self) -> Duration {
        if self.active {
            Duration::from_nanos(now_ns() - self.start_ns)
        } else {
            Duration::ZERO
        }
    }

    /// Ends the span now, returning its wall time (zero for inert
    /// spans).
    pub fn finish(mut self) -> Duration {
        let d = self.elapsed();
        self.close();
        d
    }

    fn close(&mut self) {
        if !self.active {
            return;
        }
        self.active = false;
        let end_ns = now_ns();
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Pop up to and including this span's path: robust even if
            // an inner span was leaked (e.g. across a panic boundary).
            while let Some(top) = stack.pop() {
                if top == self.path {
                    break;
                }
            }
        });
        self.tracer
            .record(&self.path, end_ns.saturating_sub(self.start_ns));
        self.tracer.export_event("E", &self.path, end_ns);
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_into_paths() {
        let t = Tracer::new();
        {
            let _a = t.span("outer");
            {
                let b = t.span("inner");
                assert_eq!(b.path(), "outer/inner");
                let d = b.finish();
                assert!(d <= Duration::from_secs(1));
            }
            let c = t.span("inner");
            assert_eq!(c.path(), "outer/inner");
        }
        let snap = t.phase_snapshot();
        let paths: Vec<&str> = snap.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(paths, vec!["outer", "outer/inner"]);
        let inner = snap.iter().find(|(p, _)| p == "outer/inner").unwrap().1;
        assert_eq!(inner.count, 2);
    }

    #[test]
    fn sibling_spans_after_finish_are_roots_again() {
        let t = Tracer::new();
        t.span("a").finish();
        let b = t.span("b");
        assert_eq!(b.path(), "b");
        drop(b);
        assert_eq!(t.phase_snapshot().len(), 2);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new();
        t.set_enabled(false);
        let s = t.span("ghost");
        assert_eq!(s.path(), "");
        assert_eq!(s.finish(), Duration::ZERO);
        assert!(t.phase_snapshot().is_empty());
        // Re-enabling works and the stack was not corrupted.
        t.set_enabled(true);
        t.span("real").finish();
        assert_eq!(t.phase_snapshot().len(), 1);
    }

    #[test]
    fn tree_and_coverage() {
        let snapshot = vec![
            (
                "root".to_string(),
                PhaseStat {
                    total_ns: 1000,
                    count: 1,
                },
            ),
            (
                "root/a".to_string(),
                PhaseStat {
                    total_ns: 600,
                    count: 1,
                },
            ),
            (
                "root/b".to_string(),
                PhaseStat {
                    total_ns: 380,
                    count: 2,
                },
            ),
            (
                "worker".to_string(),
                PhaseStat {
                    total_ns: 50,
                    count: 4,
                },
            ),
        ];
        let tree = build_tree(&snapshot);
        assert_eq!(tree.len(), 2);
        let root = &tree[0];
        assert_eq!(root.name, "root");
        assert_eq!(root.children.len(), 2);
        assert!((root.coverage_pct() - 98.0).abs() < 1e-9);
        assert_eq!(tree[1].name, "worker");
        assert_eq!(tree[1].coverage_pct(), 100.0);
    }

    #[test]
    fn untimed_intermediate_nodes_attach_children() {
        let snapshot = vec![(
            "a/b/c".to_string(),
            PhaseStat {
                total_ns: 10,
                count: 1,
            },
        )];
        let tree = build_tree(&snapshot);
        assert_eq!(tree[0].name, "a");
        assert_eq!(tree[0].stat.total_ns, 0);
        assert_eq!(tree[0].children[0].children[0].name, "c");
    }

    #[test]
    fn report_renders_percentages() {
        let t = Tracer::new();
        {
            let _root = t.span("root");
            t.span("child").finish();
        }
        let report = t.render_report();
        assert!(report.contains("root"));
        assert!(report.contains("child"));
        assert!(report.contains('%'));
    }

    #[test]
    fn jsonl_export_writes_thread_tagged_events() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("codelayout-obs-test-{}.jsonl", std::process::id()));
        let t = Tracer::new();
        t.init_export(path.to_str().unwrap()).unwrap();
        t.span("phase").finish();
        t.instant("marker");
        t.event("serve/epoch", json!({"epoch": 3, "drift_milli": 412}));
        t.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        let begin = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(begin.get("ev").as_str(), Some("B"));
        assert_eq!(begin.get("path").as_str(), Some("phase"));
        assert!(begin.get("thread").as_str().is_some());
        assert!(begin.get("t_us").as_u64().is_some());
        let end = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(end.get("ev").as_str(), Some("E"));
        let inst = serde_json::from_str(lines[2]).unwrap();
        assert_eq!(inst.get("ev").as_str(), Some("i"));
        let rec = serde_json::from_str(lines[3]).unwrap();
        assert_eq!(rec.get("ev").as_str(), Some("O"));
        assert_eq!(rec.get("path").as_str(), Some("serve/epoch"));
        assert_eq!(rec.get("data").get("epoch").as_u64(), Some(3));
        assert_eq!(rec.get("data").get("drift_milli").as_u64(), Some(412));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn phase_json_shape() {
        let node = PhaseNode {
            name: "x".into(),
            stat: PhaseStat {
                total_ns: 500,
                count: 1,
            },
            children: vec![],
        };
        let v = node.to_json(1000);
        assert_eq!(v.get("name").as_str(), Some("x"));
        assert_eq!(v.get("wall_ns").as_u64(), Some(500));
        assert_eq!(v.get("pct").as_f64(), Some(50.0));
        assert!(v.get("children").as_array().unwrap().is_empty());
    }
}
