//! The `serve/epoch` JSONL stream: every epoch of a serving run is
//! exported through the span tracer as one `{"ev":"O"}` line whose
//! `data` payload parses back into the epoch-record schema, including
//! the wall-clock leaf (`swap_wall_ns`) that the deterministic report
//! omits.

use codelayout_oltp::{build_study, MixPhase, Scenario};
use codelayout_serve::{run_serve, ServeConfig};

#[test]
fn every_epoch_streams_a_parsable_record() {
    let base = Scenario::quick();
    let mut cfg = ServeConfig::drift_demo(&base);
    cfg.phases = vec![MixPhase::new(2, 0), MixPhase::new(2, 3)];
    let study = build_study(&cfg.serve_scenario(&base));

    let path = std::env::temp_dir().join(format!("codelayout-epochs-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    codelayout_obs::tracer()
        .init_export(path.to_str().expect("utf-8 temp path"))
        .expect("install tracer export");

    let report = run_serve(&study, &cfg);
    codelayout_obs::tracer().flush();

    let text = std::fs::read_to_string(&path).expect("read epoch stream");
    let mut streamed = 0u64;
    for line in text.lines() {
        let v = serde_json::from_str(line).expect("every export line is JSON");
        if v.get("ev").as_str() != Some("O") || v.get("path").as_str() != Some("serve/epoch") {
            continue;
        }
        let data = v.get("data");
        for key in [
            "epoch",
            "rotation",
            "start_txn",
            "end_txn",
            "instructions",
            "events",
            "samples",
            "drift_milli",
            "misses",
            "fetches",
            "swap_wall_ns",
        ] {
            assert!(
                data.get(key).as_u64().is_some(),
                "epoch record missing integer `{key}`: {line}"
            );
        }
        for key in ["relayout", "validated", "swapped"] {
            assert!(
                data.get(key).as_bool().is_some(),
                "epoch record missing bool `{key}`: {line}"
            );
        }
        assert_eq!(
            data.get("epoch").as_u64(),
            Some(streamed),
            "epoch records out of order"
        );
        streamed += 1;
    }
    assert_eq!(
        streamed,
        cfg.total_epochs(),
        "expected one streamed record per epoch"
    );
    assert_eq!(report.epochs.len() as u64, cfg.total_epochs());
    let _ = std::fs::remove_file(&path);
}
