//! End-to-end serving-loop behavior on the bundled phase-shift demo:
//! the loop must notice the mix shift, re-layout from the sampled
//! profile, validate the swap, and recover most of the stale→oracle
//! miss gap over the final window.

use codelayout_oltp::{build_study, Scenario};
use codelayout_serve::{run_serve, ServeConfig};

#[test]
fn drift_demo_detects_the_shift_and_recovers() {
    let base = Scenario::quick();
    let cfg = ServeConfig::drift_demo(&base);
    let study = build_study(&cfg.serve_scenario(&base));
    let report = run_serve(&study, &cfg);

    for e in &report.epochs {
        println!(
            "epoch {:>2} rot {} drift {:>4} relayout {:>5} swapped {:>5} misses {:>6}/{:>8} samples {:>6}/{:>7}",
            e.epoch,
            e.rotation,
            e.drift_milli,
            e.relayout,
            e.swapped,
            e.misses,
            e.fetches,
            e.samples,
            e.events
        );
    }
    println!(
        "recovery: stale {} serve {} oracle {} -> {} milli",
        report.recovery.stale_misses,
        report.recovery.serve_misses,
        report.recovery.oracle_misses,
        report.recovery.recovery_milli
    );

    assert_eq!(report.epochs.len() as u64, cfg.total_epochs());
    // The stable prefix must not thrash: no re-layout before the shift.
    assert!(
        report.epochs.iter().take(2).all(|e| !e.relayout),
        "re-layout during the stable prefix"
    );
    // The shift must be detected and at least one swap deployed.
    assert!(report.swaps >= 1, "no validated swap after the mix shift");
    assert!(report.all_swaps_validated());
    // The loop must recover at least half of the stale→oracle gap.
    assert!(
        report.recovery.recovery_milli >= 500,
        "recovered only {} milli of the staleness gap",
        report.recovery.recovery_milli
    );
    // The deployed image actually changed.
    assert_ne!(report.base_image_digest, report.final_image_digest);
}
