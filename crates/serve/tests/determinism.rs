//! Determinism guarantee: for a fixed config and seed, the serving
//! loop's deterministic report — every epoch record and the final image
//! digest — is bit-identical across VM execution tiers, cache-replay
//! engines, and sweep thread counts. Wall-clock fields are excluded by
//! construction (`deterministic_json`), so this is an exact string
//! comparison.

use codelayout_obs::{SweepEngine, VmEngine};
use codelayout_oltp::{build_study, MixPhase, Scenario};
use codelayout_serve::{run_serve, ServeConfig};

#[test]
fn report_is_bit_identical_across_engines_and_threads() {
    let base = Scenario::quick();
    let variants = [
        (VmEngine::Block, SweepEngine::Stack, 1),
        (VmEngine::Block, SweepEngine::Direct, 7),
        (VmEngine::Interp, SweepEngine::Stack, 2),
        (VmEngine::Interp, SweepEngine::Direct, 1),
    ];
    let mut reference: Option<(String, String)> = None;
    for (vm, sweep, threads) in variants {
        let mut cfg = ServeConfig::drift_demo(&base);
        // A short two-phase stream keeps the matrix fast; the rotation
        // shift still exercises drift scoring and the decay path.
        cfg.phases = vec![MixPhase::new(2, 0), MixPhase::new(2, 3)];
        cfg.vm_engine = vm;
        cfg.sweep_engine = sweep;
        cfg.sweep_threads = threads;
        let study = build_study(&cfg.serve_scenario(&base));
        let report = run_serve(&study, &cfg);
        let json = serde_json::to_string(&report.deterministic_json()).expect("report json");
        match &reference {
            None => reference = Some((json, report.final_image_digest)),
            Some((ref_json, ref_digest)) => {
                assert_eq!(
                    &json, ref_json,
                    "serve report diverged under {vm:?}/{sweep:?}/{threads} threads"
                );
                assert_eq!(&report.final_image_digest, ref_digest);
            }
        }
    }
}
