//! Sampling overhead guard.
//!
//! The serving loop's design claim is that edge sampling is cheap
//! enough to leave on in production: at the production period (64) the
//! per-transfer cost is a countdown decrement, and the map insert
//! happens on ~1.6% of transfers. This test holds [`drain_chunks`] —
//! the exact drain the serving loop uses — to that claim two ways,
//! mirroring the observability overhead guard in `codelayout-bench`:
//!
//! 1. **Bit-identical execution** — a window served with the sampler
//!    attached ends in exactly the same architectural state (shared
//!    memory checksum, instruction count) as one served with the null
//!    hook. Sampling must observe, never perturb.
//! 2. **<5% throughput cost** — paired, order-alternated wall times for
//!    the two modes differ by less than 5% in the median.
//!
//! The true cost is ~2%, well under budget, but this host's wall-clock
//! noise is of the same order as the budget, so a single measurement
//! can read high during a load burst. Noise only inflates the estimate
//! (pairing and the median already cancel drift and outlier rounds), so
//! the guard takes the best of three measurement attempts: a sampler
//! that genuinely cost 5%+ would fail all three.

use codelayout_oltp::{build_study, Scenario};
use codelayout_profile::EdgeSampler;
use codelayout_serve::drain_chunks;
use codelayout_vm::{ExecHook, NullHook, NullSink};
use std::time::Instant;

/// The production sampling period the claim is made for.
const PERIOD: u64 = 64;

/// Drains one 60-transaction window through the serving loop's chunked
/// drain and returns (checksum, instructions).
fn run_once<H: ExecHook>(study: &codelayout_oltp::Study, hook: &mut H) -> (u64, u64) {
    let txns = study.scenario.warmup_txns + study.scenario.measure_txns;
    let (mut m, _sga) = study.new_machine(&study.base_image, &study.base_kernel_image, txns);
    let report = drain_chunks(&mut m, &mut NullSink, hook, 1);
    assert!(report.faults.is_empty(), "faults: {:?}", report.faults);
    (m.shared_checksum(), report.instructions)
}

/// One overhead measurement: the median over paired, order-alternated
/// rounds of (sampled wall time / unsampled wall time). Each timed unit
/// is many windows back to back so it's long enough (tens of
/// milliseconds) that scheduler jitter can't fake a 5% difference;
/// pairing the modes within a round cancels load drift, alternating the
/// order cancels within-round drift, and the median discards outlier
/// rounds.
fn measure_median_ratio(study: &codelayout_oltp::Study, base_sum: u64) -> f64 {
    const ROUNDS: usize = 12;
    const WINDOWS_PER_ROUND: usize = 24;
    let time_unit = |hook_on: bool| -> f64 {
        let mut sampler = EdgeSampler::user(PERIOD);
        let t = Instant::now();
        for _ in 0..WINDOWS_PER_ROUND {
            let (sum, _) = if hook_on {
                run_once(study, &mut sampler)
            } else {
                run_once(study, &mut NullHook)
            };
            assert_eq!(sum, base_sum);
        }
        t.elapsed().as_secs_f64()
    };
    let mut ratios = Vec::with_capacity(ROUNDS);
    for round in 0..ROUNDS {
        let (off, on) = if round % 2 == 0 {
            let off = time_unit(false);
            (off, time_unit(true))
        } else {
            let on = time_unit(true);
            (time_unit(false), on)
        };
        ratios.push(on / off);
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (ratios[ROUNDS / 2 - 1] + ratios[ROUNDS / 2]) / 2.0
}

#[test]
fn sampling_is_invisible_and_within_5pct() {
    let study = build_study(&Scenario::quick());

    let (base_sum, base_instrs) = run_once(&study, &mut NullHook);
    let mut sampler = EdgeSampler::user(PERIOD);
    let (sampled_sum, sampled_instrs) = run_once(&study, &mut sampler);
    assert_eq!(base_sum, sampled_sum, "sampling perturbed execution");
    assert_eq!(base_instrs, sampled_instrs);
    let shard = sampler.take_shard();
    assert!(shard.samples > 0, "sampler never fired");
    assert!(shard.events >= shard.samples * PERIOD);

    const ATTEMPTS: usize = 3;
    let mut medians = Vec::with_capacity(ATTEMPTS);
    for _ in 0..ATTEMPTS {
        let median = measure_median_ratio(&study, base_sum);
        medians.push(median);
        if median - 1.0 < 0.05 {
            return;
        }
    }
    panic!(
        "sampling lost >=5% throughput in {} consecutive measurements (median paired ratios {:?})",
        ATTEMPTS, medians
    );
}
