//! Continuous-profiling serving loop: run a rolling transaction stream,
//! sample control transfers on the live system, detect when the running
//! mix has drifted away from the mix the deployed layout was built for,
//! and hot-swap a freshly optimized [`Image`] at a transaction boundary —
//! every swap gated by translation validation.
//!
//! This is the "online" counterpart to the paper's offline methodology:
//! instead of profile → layout → measure as three separate runs, the
//! serving loop keeps a decayed sampled edge profile
//! ([`codelayout_profile::DecayedEdgeCounts`]) while the system serves
//! transactions, and re-runs the layout pipeline only when the L1
//! distance between the live edge distribution and the layout-time
//! distribution ([`codelayout_profile::edge_l1_milli`]) crosses a
//! threshold.
//!
//! # Protocol (one epoch)
//!
//! 1. **Serve** `epoch_txns` transactions under the currently deployed
//!    image, with an [`codelayout_profile::EdgeSampler`] attached (one
//!    sample every `sample_period` control transfers) and the fetch
//!    stream captured for cache replay.
//! 2. **Account**: decay the accumulated edge counts, absorb the epoch's
//!    sample shard, and compute the drift score against the reference
//!    distribution the deployed layout was built from.
//! 3. **Decide**: if drift ≥ threshold, rebuild the layout from the
//!    sampled profile, link it, and run
//!    [`codelayout_analysis::validate_translation`] — unconditionally,
//!    not just in debug builds. Only a validated image is swapped in,
//!    and the swap takes effect at the next epoch boundary (which is a
//!    transaction boundary by construction).
//! 4. **Observe**: every epoch emits a JSONL record through the span
//!    tracer (`ev:"O"`, path `serve/epoch`), updates `serve.*` metrics
//!    (drift gauge, swap-latency histogram, epoch counters), and appends
//!    an [`EpochRecord`] to the final [`ServeReport`].
//!
//! Because the VM's program counters are layout-dependent, the swap is a
//! drain-and-restart: the epoch boundary drains every server process,
//! the shared database (SGA) is snapshotted, and the next epoch starts
//! fresh processes on the new image over the restored snapshot. All
//! architectural state lives in shared memory, so the database carries
//! across epochs while code addresses are free to change.
//!
//! The report ends with a staleness evaluation over the final epoch
//! window: the same window is replayed from the same snapshot under the
//! initial (stale) image, the final served image, and an oracle image
//! built from an exact profile of that window. [`RecoveryReport`]
//! expresses how much of the stale→oracle miss gap the serving loop
//! recovered, in milli (1000 = all of it).
//!
//! Everything in [`ServeReport::deterministic_json`] is bit-identical
//! across VM engines, sweep engines, and thread counts; wall-clock swap
//! latency is reported only through the tracer/metrics side channels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use codelayout_analysis::validate_translation;
use codelayout_core::{LayoutPipeline, LayoutSeries, OptimizationSet};
use codelayout_ir::link::link;
use codelayout_ir::Image;
use codelayout_memsim::{ParallelSweep, StreamFilter, SweepSpec};
use codelayout_obs::{run_env, ProfileSource, SweepEngine, VmEngine};
use codelayout_oltp::{drift_schedule, words, MixPhase, Scenario, SgaLayout, Study};
use codelayout_profile::{
    edge_l1_milli, profile_from_edge_samples, DecayedEdgeCounts, EdgeSampler, PixieCollector,
};
use codelayout_vm::{
    ExecHook, Machine, NullHook, RunReport, TraceBuffer, TraceSink, APP_TEXT_BASE,
};
use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Scheduling chunk while draining an epoch. Smaller than the study
/// driver's chunk so temporal duty cycling (see [`drain_chunks`]) gets
/// several on/off alternations even within a short epoch.
pub const SAMPLE_CHUNK: u64 = 50_000;
/// Hard per-window instruction ceiling (safety stop against regressions).
const MAX_WINDOW_INSTRS: u64 = 4_000_000_000;

/// Configuration of the serving loop.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Transactions served per epoch (re-layout decisions happen at epoch
    /// boundaries, which are transaction boundaries).
    pub epoch_txns: u64,
    /// Sample one of every `sample_period` control transfers while the
    /// sampler is attached.
    pub sample_period: u64,
    /// Temporal duty cycle: the sampler is attached for one of every
    /// `sample_duty` [`SAMPLE_CHUNK`]-instruction scheduling chunks and
    /// fully detached (the VM's zero-overhead null-hook path) for the
    /// rest, the way DCPI-style profilers sample in interrupt-driven
    /// windows rather than watching every event. The effective sampling
    /// period is `sample_period * sample_duty`.
    pub sample_duty: u64,
    /// Re-layout when the live-vs-layout edge-distribution L1 distance
    /// (in milli, 0..=2000) reaches this threshold.
    pub drift_threshold_milli: u64,
    /// Decay numerator applied to accumulated counts each epoch.
    pub decay_num: u64,
    /// Decay denominator; `decay_num / decay_den` is the per-epoch decay.
    pub decay_den: u64,
    /// The phase-shift schedule: each phase pins the variant-table
    /// rotation for a number of epochs.
    pub phases: Vec<MixPhase>,
    /// Layout series rebuilt on drift.
    pub series: LayoutSeries,
    /// VM execution tier for the serving runs.
    pub vm_engine: VmEngine,
    /// Cache-replay engine for the per-epoch miss evaluation.
    pub sweep_engine: SweepEngine,
    /// Worker threads for the cache replay.
    pub sweep_threads: usize,
}

impl ServeConfig {
    /// The bundled phase-shift demonstration for a scenario: one epoch
    /// per `measure_txns` transactions, the [`drift_schedule`] mix
    /// (stable prefix, then the Zipf head rotated halfway), halving
    /// decay, and the paper's full optimization set. The demo samples
    /// densely (period 2, duty 1) so that even the tiny `quick`
    /// scenario yields a few thousand samples per epoch; a production
    /// loop at paper scale would raise the period (e.g.
    /// `CODELAYOUT_SERVE_SAMPLE_PERIOD=64`, the preset the
    /// sampling-overhead guard times at <5% cost), where epochs are
    /// long enough to keep the profile dense. Duty cycling
    /// (`CODELAYOUT_SERVE_SAMPLE_DUTY`) stays at 1: on this VM the
    /// sampler's cost is dominated by the per-sample map insert, not
    /// the countdown, so raising the period beats skipping chunks —
    /// and duty 1 keeps the stream deterministic across engines.
    pub fn drift_demo(scenario: &Scenario) -> Self {
        ServeConfig {
            epoch_txns: scenario.measure_txns.max(1),
            sample_period: 2,
            sample_duty: 1,
            drift_threshold_milli: 400,
            decay_num: 1,
            decay_den: 2,
            phases: drift_schedule(scenario),
            series: LayoutSeries::Paper(OptimizationSet::ALL),
            vm_engine: VmEngine::default(),
            sweep_engine: SweepEngine::default(),
            sweep_threads: 1,
        }
    }

    /// [`ServeConfig::drift_demo`] with the `CODELAYOUT_SERVE_*`,
    /// `CODELAYOUT_VM_ENGINE`, `CODELAYOUT_SWEEP_ENGINE` and
    /// `CODELAYOUT_THREADS` environment knobs applied.
    pub fn from_env(scenario: &Scenario) -> Self {
        let env = run_env();
        let mut cfg = Self::drift_demo(scenario);
        if let Some(n) = env.serve_epoch_txns {
            cfg.epoch_txns = n;
        }
        if let Some(p) = env.serve_sample_period {
            cfg.sample_period = p;
        }
        if let Some(d) = env.serve_sample_duty {
            cfg.sample_duty = d.max(1);
        }
        if let Some(t) = env.serve_drift_threshold {
            cfg.drift_threshold_milli = t;
        }
        cfg.vm_engine = env.vm_engine;
        cfg.sweep_engine = env.sweep_engine;
        cfg.sweep_threads = env.sweep_threads();
        cfg
    }

    /// Total epochs across all phases.
    pub fn total_epochs(&self) -> u64 {
        self.phases.iter().map(|p| p.epochs).sum()
    }

    /// Total transactions served by the loop.
    pub fn total_txns(&self) -> u64 {
        self.total_epochs() * self.epoch_txns
    }

    /// The variant-table rotation in effect during an epoch.
    pub fn rotation_for_epoch(&self, epoch: u64) -> usize {
        let mut remaining = epoch;
        for phase in &self.phases {
            if remaining < phase.epochs {
                return phase.rotation;
            }
            remaining -= phase.epochs;
        }
        self.phases.last().map(|p| p.rotation).unwrap_or(0)
    }

    /// The scenario to build the serving study from: `base` with the
    /// warmup folded away and the measured section sized to the full
    /// serving stream (so the SGA history region fits every epoch).
    pub fn serve_scenario(&self, base: &Scenario) -> Scenario {
        Scenario {
            warmup_txns: 0,
            measure_txns: self.total_txns(),
            ..base.clone()
        }
    }

    /// Configuration echo for manifests and figure JSON (deterministic).
    pub fn to_json(&self) -> Value {
        json!({
            "epoch_txns": self.epoch_txns,
            "sample_period": self.sample_period,
            "sample_duty": self.sample_duty,
            "drift_threshold_milli": self.drift_threshold_milli,
            "decay_num": self.decay_num,
            "decay_den": self.decay_den,
            "series": self.series.label(),
            "phases": self.phases.iter().map(|p| json!({
                "epochs": p.epochs,
                "rotation": p.rotation,
            })).collect::<Vec<_>>(),
        })
    }
}

/// One epoch of the serving loop, as recorded in the report, the
/// `serve/epoch` JSONL stream, and the manifest's `serve` section.
#[derive(Debug, Clone)]
pub struct EpochRecord {
    /// Epoch index, starting at 0.
    pub epoch: u64,
    /// Variant-table rotation the epoch was served under.
    pub rotation: usize,
    /// First transaction of the epoch (global counter).
    pub start_txn: u64,
    /// One past the last transaction of the epoch.
    pub end_txn: u64,
    /// Instructions executed in the epoch window (user + kernel).
    pub instructions: u64,
    /// Control transfers seen by the sampler.
    pub events: u64,
    /// Samples taken (≈ `events / sample_period`).
    pub samples: u64,
    /// L1 distance (milli) between the live decayed edge distribution
    /// and the distribution the deployed layout was built from.
    pub drift_milli: u64,
    /// Whether the drift detector requested a re-layout this epoch.
    pub relayout: bool,
    /// Whether the candidate image passed translation validation.
    /// Always equals `relayout` unless validation rejected a candidate.
    pub validated: bool,
    /// Whether a new image was swapped in at the end of this epoch.
    pub swapped: bool,
    /// User-stream instruction-cache misses for the epoch window on the
    /// evaluation cache (64 KB / 128 B / 2-way).
    pub misses: u64,
    /// User-stream fetches replayed for the epoch window.
    pub fetches: u64,
    /// Epoch index whose profile built the image this epoch ran under;
    /// `-1` means the initial offline deployment.
    pub layout_epoch: i64,
    /// Host wall time of the re-layout + validation + swap, in
    /// nanoseconds; zero when no re-layout ran. Volatile: excluded from
    /// [`EpochRecord::deterministic_json`] and masked in manifests.
    pub swap_wall_ns: u64,
}

impl EpochRecord {
    /// The record without its volatile wall-clock field — bit-identical
    /// across VM engines, sweep engines, and thread counts.
    pub fn deterministic_json(&self) -> Value {
        json!({
            "epoch": self.epoch,
            "rotation": self.rotation,
            "start_txn": self.start_txn,
            "end_txn": self.end_txn,
            "instructions": self.instructions,
            "events": self.events,
            "samples": self.samples,
            "drift_milli": self.drift_milli,
            "relayout": self.relayout,
            "validated": self.validated,
            "swapped": self.swapped,
            "misses": self.misses,
            "fetches": self.fetches,
            "layout_epoch": self.layout_epoch,
        })
    }

    /// The full record, including the volatile swap latency, as streamed
    /// to the `serve/epoch` JSONL channel.
    pub fn event_json(&self) -> Value {
        let mut v = self.deterministic_json();
        if let Value::Object(map) = &mut v {
            map.insert("swap_wall_ns".to_string(), json!(self.swap_wall_ns));
        }
        v
    }
}

/// Staleness evaluation over the final epoch window: the same
/// transactions, replayed from the same SGA snapshot, under three images.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Misses under the initial offline deployment (the stale layout).
    pub stale_misses: u64,
    /// Misses under the image the serving loop converged to.
    pub serve_misses: u64,
    /// Misses under the oracle: an offline re-layout from an exact
    /// profile of the window itself.
    pub oracle_misses: u64,
    /// User fetches in the window (identical across the three replays).
    pub window_fetches: u64,
    /// Fraction of the stale→oracle miss gap recovered by the serving
    /// loop, in milli, clamped to 0..=2000; 1000 when there is no gap.
    pub recovery_milli: u64,
}

impl RecoveryReport {
    /// Deterministic JSON for figures and manifests.
    pub fn to_json(&self) -> Value {
        json!({
            "stale_misses": self.stale_misses,
            "serve_misses": self.serve_misses,
            "oracle_misses": self.oracle_misses,
            "window_fetches": self.window_fetches,
            "recovery_milli": self.recovery_milli,
        })
    }
}

/// The complete result of a serving-loop run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Configuration echo.
    pub config: ServeConfig,
    /// One record per epoch, in order.
    pub epochs: Vec<EpochRecord>,
    /// Epochs whose drift score requested a re-layout.
    pub relayouts: u64,
    /// Re-layouts that validated and were swapped in.
    pub swaps: u64,
    /// Digest of the initial deployed image.
    pub base_image_digest: String,
    /// Digest of the image deployed when the stream ended.
    pub final_image_digest: String,
    /// Staleness evaluation over the final epoch window.
    pub recovery: RecoveryReport,
}

impl ServeReport {
    /// True when every requested re-layout passed translation validation.
    pub fn all_swaps_validated(&self) -> bool {
        self.epochs.iter().all(|e| e.validated == e.relayout)
    }

    /// The report without volatile fields — bit-identical across VM
    /// engines, sweep engines, and thread counts for a fixed config.
    pub fn deterministic_json(&self) -> Value {
        json!({
            "config": self.config.to_json(),
            "epochs": self.epochs.iter().map(EpochRecord::deterministic_json)
                .collect::<Vec<_>>(),
            "relayouts": self.relayouts,
            "swaps": self.swaps,
            "base_image_digest": self.base_image_digest.clone(),
            "final_image_digest": self.final_image_digest.clone(),
            "recovery": self.recovery.to_json(),
        })
    }
}

/// FNV-1a digest of an image's layout-defining tables (block starts,
/// procedure entries, program entry), as `fnv1a64:<16 hex digits>`.
pub fn image_digest(image: &Image) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let eat = |h: &mut u64, w: u32| {
        for b in w.to_le_bytes() {
            *h ^= u64::from(b);
            *h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    eat(&mut h, image.entry);
    for &s in &image.block_start {
        eat(&mut h, s);
    }
    for &p in &image.proc_entry {
        eat(&mut h, p);
    }
    format!("fnv1a64:{h:016x}")
}

/// The evaluation cache every epoch window is replayed against: the
/// paper machine's (Alpha 21164) 8 KB direct-mapped L1 instruction
/// cache with 32-byte lines, user stream only (the serving loop
/// re-layouts the application, not the kernel). The small L1 is the
/// cache that actually feels layout staleness; the 64 KB board cache
/// of the offline figures barely notices it on small scenarios.
fn window_spec(study: &Study) -> SweepSpec {
    SweepSpec::grid()
        .size_kb(8)
        .line_b(32)
        .ways(1)
        .cpus(study.scenario.num_cpus)
        .filter(StreamFilter::UserOnly)
}

/// Drains `m` to completion in [`SAMPLE_CHUNK`]-instruction chunks,
/// attaching `hook` on one of every `duty` chunks and the null hook
/// (whose monomorphized run loop carries zero observation cost) on the
/// rest. `duty == 1` keeps the hook attached throughout. This is the
/// serving loop's production drain; the sampling-overhead guard times
/// this exact function.
///
/// For a fixed VM engine the chunk boundaries are deterministic, so the
/// sampled subsequence — and everything derived from it — is too. With
/// `duty > 1` the boundaries (and hence the samples) may differ between
/// VM engines; the bundled demo and figures keep `duty == 1`, where the
/// sampler sees every transfer regardless of chunking.
///
/// # Panics
/// Panics if the drain exceeds the per-window instruction ceiling.
pub fn drain_chunks<S: TraceSink, H: ExecHook>(
    m: &mut Machine,
    sink: &mut S,
    hook: &mut H,
    duty: u64,
) -> RunReport {
    let duty = duty.max(1);
    let mut report = RunReport::default();
    let mut chunk_idx = 0u64;
    while m.live_processes() > 0 {
        let r = if chunk_idx.is_multiple_of(duty) {
            m.run_hooked(sink, hook, SAMPLE_CHUNK)
        } else {
            m.run_hooked(sink, &mut NullHook, SAMPLE_CHUNK)
        };
        report.absorb(&r);
        chunk_idx += 1;
        assert!(
            report.instructions < MAX_WINDOW_INSTRS,
            "serving window exceeded instruction ceiling"
        );
    }
    report
}

/// Outcome of draining one epoch (or replay) window.
struct WindowRun {
    report: RunReport,
    misses: u64,
    fetches: u64,
    shared: Vec<i64>,
}

/// Runs transactions `[snapshot counter, end_txn)` on a fresh machine:
/// restores the SGA snapshot (when given), pins the variant rotation,
/// drains every server process, checks the TPC-B invariants, and replays
/// the captured fetch stream against the evaluation cache.
#[allow(clippy::too_many_arguments)]
fn run_window<H: ExecHook>(
    study: &Study,
    cfg: &ServeConfig,
    image: &Arc<Image>,
    snapshot: Option<&[i64]>,
    end_txn: u64,
    rotation: usize,
    hook: &mut H,
    duty: u64,
) -> WindowRun {
    let (mut m, sga) =
        study.new_machine_with(image, &study.base_kernel_image, end_txn, cfg.vm_engine);
    if let Some(words_snapshot) = snapshot {
        m.load_shared(words_snapshot);
        // The snapshot froze the previous window's limit; re-arm it for
        // this window *after* the restore. The transaction counter is
        // re-armed from the committed count: draining a window leaves
        // one failed-receive increment per process on the counter
        // (fetch-add happens before the limit check), and replaying
        // that overshoot would silently drop transactions.
        m.set_shared_word(words::LIMIT, end_txn as i64);
        let committed = m.shared_word(words::HIST_NEXT);
        m.set_shared_word(words::COUNTER, committed);
    }
    SgaLayout::fill_variant_table_rotated(&mut m, study.scenario.scale.stmt_variants, rotation);

    let mut trace = TraceBuffer::fetch_only();
    let report = drain_chunks(&mut m, &mut trace, hook, duty);
    assert!(
        report.faults.is_empty(),
        "faulted processes in serving window: {:?}",
        report.faults
    );
    let invariants = sga.read_invariants(&m);
    assert!(
        invariants.consistent(),
        "TPC-B invariants violated in serving window: {invariants:?}"
    );
    assert_eq!(
        invariants.history_count as u64, end_txn,
        "serving window committed the wrong number of transactions"
    );

    let shared = m.shared_mem().to_vec();
    let frozen = trace.freeze();
    let cells = ParallelSweep::new(cfg.sweep_threads)
        .with_engine(cfg.sweep_engine)
        .run_one(&frozen, &window_spec(study));
    let cell = cells.first().expect("window spec yields one cell");
    WindowRun {
        report,
        misses: cell.stats.misses,
        fetches: cell.stats.accesses,
        shared,
    }
}

/// Links and validates a layout built from `profile`, returning the
/// image only if translation validation proves it preserves the
/// program's control flow.
fn build_validated_image(
    study: &Study,
    cfg: &ServeConfig,
    profile: &codelayout_profile::Profile,
) -> Option<Arc<Image>> {
    let layout = LayoutPipeline::new(&study.app.program, profile).build_series(cfg.series);
    let image = match link(&study.app.program, &layout, APP_TEXT_BASE) {
        Ok(image) => image,
        Err(e) => {
            codelayout_obs::metrics().add("serve.link_rejects", 1);
            eprintln!("serve: candidate layout failed to link: {e:?}");
            return None;
        }
    };
    match validate_translation(&study.app.program, &layout, &image) {
        Ok(_) => Some(Arc::new(image)),
        Err(e) => {
            codelayout_obs::metrics().add("serve.validation_rejects", 1);
            eprintln!("serve: candidate image failed translation validation: {e:?}");
            None
        }
    }
}

/// Runs the serving loop over `study` (built from
/// [`ServeConfig::serve_scenario`]) and evaluates the outcome.
///
/// # Panics
/// Panics if any window faults, breaks the TPC-B invariants, or commits
/// the wrong number of transactions — all of which indicate a bug, not
/// an environmental condition.
pub fn run_serve(study: &Study, cfg: &ServeConfig) -> ServeReport {
    let _span = codelayout_obs::span("serve");
    let met = codelayout_obs::metrics();
    let capacity = study
        .scenario
        .profile_txns
        .max(study.scenario.warmup_txns + study.scenario.measure_txns);
    assert!(
        cfg.total_txns() <= capacity,
        "serving study too small for the configured stream; \
         build it from ServeConfig::serve_scenario"
    );

    // Initial offline deployment, from the study's profiling run — the
    // layout a DBA would have shipped. Validated like every later swap.
    let initial_profile = study.profile_for(ProfileSource::Measured);
    let initial_image = build_validated_image(study, cfg, initial_profile)
        .expect("initial deployment must link and validate");
    let base_digest = image_digest(&initial_image);

    // The drift reference is the live sampled distribution observed in
    // the first epoch served under each deployed layout — never the
    // dense offline profile. Sampled distributions are sparse (a few
    // hundred edges carry all the mass), so comparing one against the
    // full profile reads as permanent large drift; comparing sampled
    // against sampled isolates the real signal: the mix changing under
    // a fixed layout. `None` means the current layout is uncalibrated
    // and the next epoch's distribution becomes its reference.
    let mut reference: Option<BTreeMap<(u32, u32), u64>> = None;
    let mut current_image = Arc::clone(&initial_image);
    let mut layout_epoch: i64 = -1;

    let mut sampler = EdgeSampler::user(cfg.sample_period);
    let mut decayed = DecayedEdgeCounts::new(cfg.decay_num, cfg.decay_den);
    let mut snapshot: Option<Vec<i64>> = None;
    let mut last_window_snapshot: Option<Vec<i64>> = None;

    let mut epochs: Vec<EpochRecord> = Vec::new();
    let mut relayouts = 0u64;
    let mut swaps = 0u64;

    let total_epochs = cfg.total_epochs();
    for epoch in 0..total_epochs {
        let _epoch_span = codelayout_obs::span("epoch");
        let start_txn = epoch * cfg.epoch_txns;
        let end_txn = start_txn + cfg.epoch_txns;
        let rotation = cfg.rotation_for_epoch(epoch);
        if epoch == total_epochs - 1 {
            last_window_snapshot = snapshot.clone();
        }

        let window = run_window(
            study,
            cfg,
            &current_image,
            snapshot.as_deref(),
            end_txn,
            rotation,
            &mut sampler,
            cfg.sample_duty,
        );
        snapshot = Some(window.shared);

        let shard = sampler.take_shard();
        let (events, samples) = (shard.events, shard.samples);
        decayed.decay();
        decayed.absorb(&shard);
        let drift_milli = match &reference {
            Some(reference) => edge_l1_milli(&decayed.edges, reference),
            None => 0,
        };
        if reference.is_none() {
            reference = Some(decayed.edges.clone());
        }

        let relayout = drift_milli >= cfg.drift_threshold_milli && !decayed.edges.is_empty();
        let mut validated = relayout;
        let mut swapped = false;
        let mut swap_wall_ns = 0u64;
        let ran_layout_epoch = layout_epoch;
        if relayout {
            relayouts += 1;
            let swap_start = std::time::Instant::now();
            let live = profile_from_edge_samples(&study.app.program, &decayed, cfg.sample_period);
            match build_validated_image(study, cfg, &live) {
                Some(image) => {
                    current_image = image;
                    layout_epoch = epoch as i64;
                    // Recalibrate against the first epoch served under
                    // the new layout.
                    reference = None;
                    swapped = true;
                    swaps += 1;
                }
                None => validated = false,
            }
            swap_wall_ns = swap_start.elapsed().as_nanos() as u64;
            met.observe("serve.swap_ns", swap_wall_ns);
        }

        let record = EpochRecord {
            epoch,
            rotation,
            start_txn,
            end_txn,
            instructions: window.report.instructions,
            events,
            samples,
            drift_milli,
            relayout,
            validated,
            swapped,
            misses: window.misses,
            fetches: window.fetches,
            layout_epoch: ran_layout_epoch,
            swap_wall_ns,
        };
        met.add("serve.epochs", 1);
        met.add("serve.sample_events", events);
        met.add("serve.samples", samples);
        met.gauge_set("serve.drift_milli", drift_milli as f64);
        met.observe("serve.epoch_misses", window.misses);
        if swapped {
            met.add("serve.swaps", 1);
        }
        codelayout_obs::tracer().event("serve/epoch", record.event_json());
        epochs.push(record);
    }

    // Staleness evaluation: replay the final epoch window from its start
    // snapshot under the stale, served, and oracle images. The stale
    // replay doubles as the oracle's exact profiling run — the hook
    // streams are layout-invariant, so the profile it collects is the
    // window's true edge profile regardless of which image runs it.
    let eval_span = codelayout_obs::span("recovery_eval");
    let last_epoch = total_epochs - 1;
    let window_end = cfg.total_txns();
    let rotation = cfg.rotation_for_epoch(last_epoch);
    let num_blocks = study.app.program.blocks.len();

    let mut pixie = PixieCollector::user(num_blocks);
    let stale = run_window(
        study,
        cfg,
        &initial_image,
        last_window_snapshot.as_deref(),
        window_end,
        rotation,
        &mut pixie,
        1,
    );
    let oracle_image = build_validated_image(study, cfg, pixie.profile())
        .expect("oracle layout must link and validate");
    let oracle = run_window(
        study,
        cfg,
        &oracle_image,
        last_window_snapshot.as_deref(),
        window_end,
        rotation,
        &mut NullHook,
        1,
    );
    let served = run_window(
        study,
        cfg,
        &current_image,
        last_window_snapshot.as_deref(),
        window_end,
        rotation,
        &mut NullHook,
        1,
    );
    eval_span.finish();

    let recovery = RecoveryReport {
        stale_misses: stale.misses,
        serve_misses: served.misses,
        oracle_misses: oracle.misses,
        window_fetches: stale.fetches,
        recovery_milli: recovery_milli(stale.misses, served.misses, oracle.misses),
    };
    met.gauge_set("serve.recovery_milli", recovery.recovery_milli as f64);

    ServeReport {
        config: cfg.clone(),
        epochs,
        relayouts,
        swaps,
        base_image_digest: base_digest,
        final_image_digest: image_digest(&current_image),
        recovery,
    }
}

/// Fraction of the stale→oracle miss gap the serving loop recovered, in
/// milli, clamped to 0..=2000. When the oracle shows no gap the layout
/// was never stale and recovery is defined as 1000 (nothing to recover).
pub fn recovery_milli(stale: u64, served: u64, oracle: u64) -> u64 {
    if stale <= oracle {
        return 1000;
    }
    let gap = i128::from(stale) - i128::from(oracle);
    let closed = i128::from(stale) - i128::from(served);
    (closed * 1000 / gap).clamp(0, 2000) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_schedule_walks_phases() {
        let mut cfg = ServeConfig::drift_demo(&Scenario::quick());
        cfg.phases = vec![
            MixPhase::new(2, 0),
            MixPhase::new(3, 7),
            MixPhase::new(1, 2),
        ];
        assert_eq!(cfg.total_epochs(), 6);
        let rotations: Vec<usize> = (0..6).map(|e| cfg.rotation_for_epoch(e)).collect();
        assert_eq!(rotations, vec![0, 0, 7, 7, 7, 2]);
        // Past the end the last phase sticks (defensive; the loop never
        // asks).
        assert_eq!(cfg.rotation_for_epoch(99), 2);
    }

    #[test]
    fn serve_scenario_sizes_the_history_region() {
        let base = Scenario::quick();
        let cfg = ServeConfig::drift_demo(&base);
        let sc = cfg.serve_scenario(&base);
        assert_eq!(sc.warmup_txns, 0);
        assert_eq!(sc.measure_txns, cfg.total_txns());
        assert_eq!(sc.seed, base.seed);
        // drift_demo on quick: (3 + 5 phases) × 60 txns.
        assert_eq!(cfg.total_txns(), 8 * 60);
    }

    #[test]
    fn recovery_milli_expresses_the_closed_gap() {
        // Closed half the gap: stale 100, oracle 60, served 80.
        assert_eq!(recovery_milli(100, 80, 60), 500);
        // Closed all of it.
        assert_eq!(recovery_milli(100, 60, 60), 1000);
        // Beat the oracle (possible: different tie-breaks), clamped.
        assert_eq!(recovery_milli(100, 20, 60), 2000);
        // Made things worse: clamped at zero.
        assert_eq!(recovery_milli(100, 130, 60), 0);
        // No gap to close.
        assert_eq!(recovery_milli(50, 55, 50), 1000);
        assert_eq!(recovery_milli(50, 55, 80), 1000);
    }

    #[test]
    fn epoch_record_json_shapes() {
        let rec = EpochRecord {
            epoch: 4,
            rotation: 3,
            start_txn: 240,
            end_txn: 300,
            instructions: 123_456,
            events: 4_000,
            samples: 62,
            drift_milli: 712,
            relayout: true,
            validated: true,
            swapped: true,
            misses: 1_234,
            fetches: 98_765,
            layout_epoch: -1,
            swap_wall_ns: 1_000_000,
        };
        let det = rec.deterministic_json();
        assert!(det.get("swap_wall_ns").as_u64().is_none());
        assert_eq!(det.get("drift_milli").as_u64(), Some(712));
        assert_eq!(det.get("layout_epoch").as_i64(), Some(-1));
        let ev = rec.event_json();
        assert_eq!(ev.get("swap_wall_ns").as_u64(), Some(1_000_000));
        assert_eq!(ev.get("epoch").as_u64(), Some(4));
    }

    #[test]
    fn image_digest_tracks_layout_identity() {
        use codelayout_ir::{link::link, Layout, ProcBuilder, ProgramBuilder};
        let mut pb = ProgramBuilder::new("digest-test");
        let main = pb.declare_proc("main");
        let helper = pb.declare_proc("helper");
        let mut f = ProcBuilder::new();
        let e = f.entry();
        let done = f.new_block();
        f.select(e);
        f.nop();
        f.call(helper);
        f.jump(done);
        f.select(done);
        f.halt();
        pb.define_proc(main, f).unwrap();
        let mut g = ProcBuilder::new();
        g.ret();
        pb.define_proc(helper, g).unwrap();
        let program = pb.finish(main).unwrap();
        let natural = Layout::natural(&program);
        let a = link(&program, &natural, APP_TEXT_BASE).unwrap();
        let b = link(&program, &natural, APP_TEXT_BASE).unwrap();
        assert_eq!(image_digest(&a), image_digest(&b));
        assert!(image_digest(&a).starts_with("fnv1a64:"));
        assert_eq!(image_digest(&a).len(), "fnv1a64:".len() + 16);
    }
}
