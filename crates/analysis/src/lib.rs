//! Static analysis over linked images: translation validation and
//! layout-quality lints.
//!
//! The layout optimizations in `codelayout-core` are pure permutations of
//! block ids, but the *linker* is not: it inverts branch predicates,
//! erases unconditional branches on fall-through edges, and re-targets
//! calls — exactly the transformations that silently corrupt control flow
//! when buggy (the motivating failure mode for BOLT's and Codestitcher's
//! reconstructed-CFG checks). This crate provides the gating correctness
//! tool plus a diagnostics layer on top:
//!
//! * [`validate_translation`] — an abstract walker that decodes every
//!   instruction of the image, reconstructs the image-level CFG
//!   (fall-throughs, inverted conditionals, eliminated unconditionals,
//!   split branch encodings, jump tables, calls), maps it back to source
//!   [`codelayout_ir::BlockId`]s and proves it equivalent — including
//!   branch *polarity*, which plain edge-set comparison cannot see — to
//!   the source CFG. Any divergence is a [`ValidationError`] naming the
//!   offending block and edge.
//! * [`analyze_layout`] / [`lint_layout`] — a lint engine with stable
//!   codes (`L000`–`L008`), severities (deny/warn/info) and text + JSON
//!   renderers, diagnosing layout-quality regressions: hot edges that are
//!   not fall-throughs under chaining, cold blocks glued into hot
//!   segments, misaligned hot blocks, unreachable-but-placed code, and
//!   loop-aware problems (split hot loop bodies, unrotated back edges).
//! * [`DomTree`] / [`LoopForest`] / [`estimate_static_profile`] — the
//!   purely static stack: Cooper–Harvey–Kennedy dominator trees, natural
//!   loops with nesting depths, and a Ball–Larus-style branch-probability
//!   estimator with deterministic integer frequency propagation that
//!   emits a standard [`codelayout_profile::Profile`], letting every
//!   layout series run without a measured profile.
//!
//! # Example
//!
//! ```
//! use codelayout_analysis::{analyze_layout, validate_translation, LintConfig};
//! use codelayout_core::{LayoutPipeline, OptimizationSet};
//! use codelayout_ir::{link::link, ProcBuilder, ProgramBuilder};
//! use codelayout_profile::Profile;
//!
//! let mut pb = ProgramBuilder::new("demo");
//! let main = pb.declare_proc("main");
//! let mut f = ProcBuilder::new();
//! f.nop();
//! f.halt();
//! pb.define_proc(main, f).unwrap();
//! let program = pb.finish(main).unwrap();
//! let profile = Profile::new(program.blocks.len());
//!
//! let set = OptimizationSet::ALL;
//! let layout = LayoutPipeline::new(&program, &profile).build(set);
//! let image = link(&program, &layout, 0x1_0000).unwrap();
//!
//! let report = validate_translation(&program, &layout, &image).unwrap();
//! assert_eq!(report.blocks, program.blocks.len());
//! let lints = analyze_layout(&program, &profile, &layout, &image, &LintConfig::new(set));
//! assert!(!lints.has_deny());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(
    clippy::module_name_repetitions,
    clippy::must_use_candidate,
    clippy::missing_errors_doc,
    clippy::missing_panics_doc,
    clippy::many_single_char_names,
    clippy::too_many_lines
)]

mod cfg;
mod dom;
mod lint;
mod loops;
mod staticprof;
mod validate;

pub use cfg::SourceCfg;
pub use dom::DomTree;
pub use lint::{analyze_layout, lint_layout, Diagnostic, LintConfig, LintReport, Severity};
pub use loops::{LoopForest, NaturalLoop};
pub use staticprof::{
    branch_probabilities, estimate_static_profile, estimate_static_profile_with, StaticAnalysis,
    PROB_SCALE, STATIC_ENTRY_COUNT,
};
pub use validate::{validate_translation, TranslationReport, ValidationError};
