//! Dominator trees over the source CFG (Cooper–Harvey–Kennedy).
//!
//! Dominance is an *intra-procedural* notion here: each procedure's tree
//! is rooted at its entry block and computed over the terminator edges
//! that stay inside the procedure (calls return into the same block, so
//! call edges never carry dominance). The algorithm is the simple
//! iterative one of Cooper, Harvey and Kennedy ("A Simple, Fast
//! Dominance Algorithm"): reverse-postorder iteration with the
//! two-finger `intersect` walk, which converges in a handful of passes
//! on reducible graphs and is robust on irreducible ones.
//!
//! The tree is the foundation for natural-loop detection
//! ([`crate::loops`]) and the static branch-probability heuristics
//! ([`crate::staticprof`]).

use crate::cfg::SourceCfg;
use codelayout_ir::{BlockId, Program};

/// Immediate-dominator trees for every procedure of a program.
///
/// Blocks unreachable from their procedure's entry (dead code) have no
/// dominator information; queries involving them return `None`/`false`.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator of each block (indexed by [`BlockId`]).
    /// A procedure entry is its own immediate dominator; blocks
    /// unreachable within their procedure have `None`.
    idom: Vec<Option<BlockId>>,
    /// Reverse-postorder number of each block within its procedure's
    /// traversal (`usize::MAX` when unreachable). Lower numbers are
    /// closer to the procedure entry.
    rpo_index: Vec<usize>,
    /// Depth in the dominator tree (procedure entries are 0).
    depth: Vec<u32>,
    /// Reverse postorder of each procedure's reachable blocks, in
    /// procedure order — the canonical iteration order for every
    /// analysis built on this tree.
    rpo: Vec<Vec<BlockId>>,
}

impl DomTree {
    /// Computes dominator trees for every procedure.
    pub fn compute(program: &Program, cfg: &SourceCfg) -> DomTree {
        let n = program.blocks.len();
        let owner = program.owner_of_blocks();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        let mut rpo_index = vec![usize::MAX; n];
        let mut depth = vec![0u32; n];
        let mut rpo = Vec::with_capacity(program.procs.len());

        // Intra-procedural predecessor lists, built once.
        let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for (bi, succs) in cfg.succs.iter().enumerate() {
            for &s in succs {
                if owner[s.index()] == owner[bi] {
                    preds[s.index()].push(BlockId(u32::try_from(bi).expect("fits u32")));
                }
            }
        }

        for proc in &program.procs {
            let order = proc_rpo(proc.entry, cfg, &owner);
            for (i, &b) in order.iter().enumerate() {
                rpo_index[b.index()] = i;
            }

            // Cooper–Harvey–Kennedy fixed point over the RPO.
            idom[proc.entry.index()] = Some(proc.entry);
            let mut changed = true;
            while changed {
                changed = false;
                for &b in order.iter().skip(1) {
                    let mut new_idom: Option<BlockId> = None;
                    for &p in &preds[b.index()] {
                        if idom[p.index()].is_none() {
                            continue; // predecessor not yet processed / unreachable
                        }
                        new_idom = Some(match new_idom {
                            None => p,
                            Some(cur) => intersect(&idom, &rpo_index, p, cur),
                        });
                    }
                    if new_idom.is_some() && idom[b.index()] != new_idom {
                        idom[b.index()] = new_idom;
                        changed = true;
                    }
                }
            }

            // Tree depths: an idom always has a smaller RPO number, so one
            // pass in RPO order sees every parent before its children.
            for &b in order.iter().skip(1) {
                if let Some(d) = idom[b.index()] {
                    depth[b.index()] = depth[d.index()] + 1;
                }
            }
            rpo.push(order);
        }

        DomTree {
            idom,
            rpo_index,
            depth,
            rpo,
        }
    }

    /// The immediate dominator of `b`. Procedure entries return
    /// themselves; blocks unreachable within their procedure return
    /// `None`.
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom.get(b.index()).copied().flatten()
    }

    /// True when `b` is reachable from its procedure's entry (and so has
    /// dominance information).
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.idom.get(b.index()).is_some_and(Option::is_some)
    }

    /// Reverse-postorder number of `b` within its procedure
    /// (`usize::MAX` when unreachable).
    pub fn rpo_index(&self, b: BlockId) -> usize {
        self.rpo_index.get(b.index()).copied().unwrap_or(usize::MAX)
    }

    /// Reverse postorder of each procedure's reachable blocks, indexed
    /// by `ProcId`.
    pub fn proc_rpo(&self) -> &[Vec<BlockId>] {
        &self.rpo
    }

    /// True when `a` dominates `b` (reflexively: every block dominates
    /// itself). Blocks of different procedures never dominate each
    /// other; unreachable blocks dominate nothing and are dominated by
    /// nothing.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if !self.is_reachable(a) || !self.is_reachable(b) {
            return false;
        }
        // Climb b's dominator chain until its depth reaches a's. The
        // chain stays within b's procedure, so a block from another
        // procedure can never be met.
        let mut cur = b;
        while self.depth[cur.index()] > self.depth[a.index()] {
            cur = self.idom[cur.index()].expect("reachable blocks have idoms");
        }
        cur == a
    }
}

/// Two-finger intersection walk from the CHK paper, over RPO numbers.
fn intersect(
    idom: &[Option<BlockId>],
    rpo_index: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[a.index()] > rpo_index[b.index()] {
            a = idom[a.index()].expect("processed blocks have idoms");
        }
        while rpo_index[b.index()] > rpo_index[a.index()] {
            b = idom[b.index()].expect("processed blocks have idoms");
        }
    }
    a
}

/// Reverse postorder of one procedure's blocks reachable from `entry`,
/// following intra-procedural terminator edges. Iterative DFS with an
/// explicit stack; successor order follows the deduplicated terminator
/// order, so the result is deterministic.
fn proc_rpo(entry: BlockId, cfg: &SourceCfg, owner: &[codelayout_ir::ProcId]) -> Vec<BlockId> {
    let mut post: Vec<BlockId> = Vec::new();
    let mut state: Vec<u8> = vec![0; cfg.succs.len()]; // 0 new, 1 open, 2 done
    let mut stack: Vec<(BlockId, usize)> = vec![(entry, 0)];
    state[entry.index()] = 1;
    while let Some(&mut (b, ref mut next)) = stack.last_mut() {
        let succs = &cfg.succs[b.index()];
        let mut pushed = false;
        while *next < succs.len() {
            let s = succs[*next];
            *next += 1;
            if owner[s.index()] == owner[b.index()] && state[s.index()] == 0 {
                state[s.index()] = 1;
                stack.push((s, 0));
                pushed = true;
                break;
            }
        }
        if !pushed && stack.last().is_some_and(|&(top, _)| top == b) {
            state[b.index()] = 2;
            post.push(b);
            stack.pop();
        }
    }
    post.reverse();
    post
}

#[cfg(test)]
mod tests {
    use super::*;
    use codelayout_ir::{Cond, Operand, ProcBuilder, ProgramBuilder, Reg};

    /// Diamond with a loop: e -> (a | b) -> j; j -> e (back) or x.
    fn looped_program() -> Program {
        let mut pb = ProgramBuilder::new("dom");
        let main = pb.declare_proc("main");
        let mut f = ProcBuilder::new();
        let e = f.entry();
        let a = f.new_block();
        let b = f.new_block();
        let j = f.new_block();
        let x = f.new_block();
        f.select(e);
        f.branch(Cond::Eq, Reg(1), Operand::Imm(0), a, b);
        f.select(a);
        f.jump(j);
        f.select(b);
        f.jump(j);
        f.select(j);
        f.branch(Cond::Lt, Reg(2), Operand::Imm(3), e, x);
        f.select(x);
        f.halt();
        pb.define_proc(main, f).unwrap();
        pb.finish(main).unwrap()
    }

    #[test]
    fn diamond_join_is_dominated_by_entry_only() {
        let p = looped_program();
        let cfg = SourceCfg::of(&p);
        let dom = DomTree::compute(&p, &cfg);
        let (e, a, b, j, x) = (BlockId(0), BlockId(1), BlockId(2), BlockId(3), BlockId(4));
        assert_eq!(dom.idom(e), Some(e));
        assert_eq!(dom.idom(a), Some(e));
        assert_eq!(dom.idom(b), Some(e));
        assert_eq!(dom.idom(j), Some(e), "join after a diamond hangs off entry");
        assert_eq!(dom.idom(x), Some(j));
        assert!(dom.dominates(e, x));
        assert!(dom.dominates(j, x));
        assert!(!dom.dominates(a, j));
        assert!(dom.dominates(j, j), "dominance is reflexive");
        assert!(!dom.dominates(x, j));
    }

    #[test]
    fn unreachable_blocks_have_no_dominators() {
        let mut pb = ProgramBuilder::new("dead");
        let main = pb.declare_proc("main");
        let mut f = ProcBuilder::new();
        let e = f.entry();
        let orphan = f.new_block();
        f.select(e);
        f.halt();
        f.select(orphan);
        f.halt();
        pb.define_proc(main, f).unwrap();
        let p = pb.finish(main).unwrap();
        let cfg = SourceCfg::of(&p);
        let dom = DomTree::compute(&p, &cfg);
        assert!(dom.is_reachable(BlockId(0)));
        assert!(!dom.is_reachable(BlockId(1)));
        assert_eq!(dom.idom(BlockId(1)), None);
        assert!(!dom.dominates(BlockId(0), BlockId(1)));
        assert!(!dom.dominates(BlockId(1), BlockId(1)));
    }

    #[test]
    fn dominance_never_crosses_procedures() {
        let mut pb = ProgramBuilder::new("two");
        let main = pb.declare_proc("main");
        let leaf = pb.declare_proc("leaf");
        let mut f = ProcBuilder::new();
        f.call(leaf);
        f.halt();
        pb.define_proc(main, f).unwrap();
        let mut g = ProcBuilder::new();
        g.nop();
        g.ret();
        pb.define_proc(leaf, g).unwrap();
        let p = pb.finish(main).unwrap();
        let cfg = SourceCfg::of(&p);
        let dom = DomTree::compute(&p, &cfg);
        assert!(dom.is_reachable(BlockId(1)), "leaf entry has its own tree");
        assert_eq!(dom.idom(BlockId(1)), Some(BlockId(1)));
        assert!(!dom.dominates(BlockId(0), BlockId(1)));
        assert!(!dom.dominates(BlockId(1), BlockId(0)));
    }

    #[test]
    fn rpo_orders_parents_before_children() {
        let p = looped_program();
        let cfg = SourceCfg::of(&p);
        let dom = DomTree::compute(&p, &cfg);
        assert_eq!(dom.proc_rpo().len(), 1);
        let order = &dom.proc_rpo()[0];
        assert_eq!(order.len(), 5);
        assert_eq!(order[0], BlockId(0));
        for &b in order.iter().skip(1) {
            let d = dom.idom(b).unwrap();
            assert!(
                dom.rpo_index(d) < dom.rpo_index(b),
                "idom of {b} must precede it in RPO"
            );
        }
    }
}
