//! Translation validation: prove a linked [`Image`] is a faithful
//! lowering of its source [`Program`] under a [`Layout`].
//!
//! The validator is an abstract walker over the image. It decodes every
//! instruction of every block region, maps each region back to its source
//! [`BlockId`] (via the image's attribution tables, which it first
//! cross-checks against the layout), reconstructs the image-level CFG —
//! fall-throughs, inverted conditional branches, eliminated unconditional
//! branches, split conditional encodings, jump tables, calls — and proves
//! it equivalent to the source CFG.
//!
//! Equivalence here is stronger than edge-*set* equality: a conditional
//! branch whose arms were swapped without inverting the predicate has the
//! same successor set but the opposite polarity, so the validator checks
//! the *semantic* mapping: the taken arm must be reached exactly when the
//! source predicate (or its explicit inversion) holds. This is what makes
//! the pass a translation validator rather than a structural linter: any
//! divergence is a hard [`ValidationError`] naming the offending block and
//! edge.

use crate::cfg::SourceCfg;
use codelayout_ir::{
    verify_layout, BlockId, Image, Instr, LInstr, Layout, ProcId, Program, Terminator,
};
use std::fmt;

/// A divergence between the source program and the linked image.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ValidationError {
    /// The layout failed structural verification before walking.
    BadLayout(String),
    /// An image attribution table disagrees with the program/layout.
    BadAttribution(String),
    /// A procedure's entry index does not point at its entry block.
    ProcEntryMismatch {
        /// The procedure.
        proc: ProcId,
        /// Index recorded in the image.
        image_entry: u32,
        /// Index the entry block actually starts at.
        block_start: u32,
    },
    /// A block region is too short to hold its body.
    TruncatedBlock {
        /// The block.
        block: BlockId,
        /// Instructions available in the region.
        region: usize,
        /// Source body instructions.
        body: usize,
    },
    /// A body instruction does not match its source counterpart.
    BodyMismatch {
        /// The block.
        block: BlockId,
        /// Offset of the instruction within the block body.
        offset: usize,
        /// The source instruction.
        expected: String,
        /// The lowered instruction found.
        found: String,
    },
    /// A call site targets something other than the callee's entry.
    CallTargetMismatch {
        /// The calling block.
        block: BlockId,
        /// The callee.
        callee: ProcId,
        /// Entry index the callee starts at.
        expected: u32,
        /// Target encoded in the image.
        found: u32,
    },
    /// A control transfer lands in the middle of a block.
    JumpIntoMiddle {
        /// The transferring block.
        block: BlockId,
        /// The bogus target instruction index.
        target: u32,
        /// The block that owns the target index.
        lands_in: BlockId,
    },
    /// The terminator encoding does not realize the source terminator.
    TerminatorMismatch {
        /// The block.
        block: BlockId,
        /// The source terminator, rendered.
        expected: String,
        /// What the image region ends with, rendered.
        found: String,
    },
    /// A conditional branch has the right successor set but the wrong
    /// polarity: the taken/fall-through arms are swapped relative to the
    /// encoded predicate. This is the classic chaining bug.
    BranchPolarity {
        /// The branching block.
        block: BlockId,
        /// Arm the source takes when the predicate holds.
        then_: BlockId,
        /// Arm the source takes otherwise.
        else_: BlockId,
        /// Block the image branches to when the encoded predicate holds.
        taken: BlockId,
        /// Block the image falls through to (or reaches via a trailing
        /// unconditional branch).
        fallthrough: BlockId,
    },
    /// The reconstructed successor edges of a block differ from the
    /// source terminator's successors.
    EdgeMismatch {
        /// The block.
        block: BlockId,
        /// Source successors.
        expected: Vec<BlockId>,
        /// Successors reconstructed from the image.
        found: Vec<BlockId>,
    },
    /// Image-level reachability disagrees with source-level reachability.
    ReachabilityDivergence {
        /// The block that is reachable on exactly one side.
        block: BlockId,
        /// Reachable in the source CFG.
        in_source: bool,
        /// Reachable in the reconstructed image CFG.
        in_image: bool,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::BadLayout(m) => write!(f, "layout rejected before walking: {m}"),
            ValidationError::BadAttribution(m) => write!(f, "image attribution broken: {m}"),
            ValidationError::ProcEntryMismatch {
                proc,
                image_entry,
                block_start,
            } => write!(
                f,
                "procedure {proc} entry index {image_entry} does not match its entry block start {block_start}"
            ),
            ValidationError::TruncatedBlock {
                block,
                region,
                body,
            } => write!(
                f,
                "block {block} region holds {region} instructions but the source body has {body}"
            ),
            ValidationError::BodyMismatch {
                block,
                offset,
                expected,
                found,
            } => write!(
                f,
                "block {block} body instruction {offset}: expected lowering of `{expected}`, found `{found}`"
            ),
            ValidationError::CallTargetMismatch {
                block,
                callee,
                expected,
                found,
            } => write!(
                f,
                "call in block {block} to {callee} targets index {found}, entry is {expected}"
            ),
            ValidationError::JumpIntoMiddle {
                block,
                target,
                lands_in,
            } => write!(
                f,
                "transfer from block {block} targets index {target}, which is inside {lands_in}, not at a block start"
            ),
            ValidationError::TerminatorMismatch {
                block,
                expected,
                found,
            } => write!(
                f,
                "block {block} terminator `{expected}` was lowered as `{found}`"
            ),
            ValidationError::BranchPolarity {
                block,
                then_,
                else_,
                taken,
                fallthrough,
            } => write!(
                f,
                "block {block} branch polarity corrupted: source arms are then={then_} else={else_}, \
                 but the image takes edge {block}->{taken} when the encoded predicate holds and \
                 falls through on edge {block}->{fallthrough}"
            ),
            ValidationError::EdgeMismatch {
                block,
                expected,
                found,
            } => write!(
                f,
                "block {block} successor edges diverge: source {expected:?}, image {found:?}"
            ),
            ValidationError::ReachabilityDivergence {
                block,
                in_source,
                in_image,
            } => write!(
                f,
                "block {block} reachability diverges: source={in_source}, image={in_image}"
            ),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Statistics from a successful validation walk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TranslationReport {
    /// Blocks walked (always the whole program).
    pub blocks: usize,
    /// Body instructions matched one-to-one against the source.
    pub body_instrs: usize,
    /// Terminator successor edges proven equivalent.
    pub edges: usize,
    /// Call sites whose targets were proven to be procedure entries.
    pub calls: usize,
    /// Unconditional transfers realized as free fall-throughs.
    pub fallthroughs: usize,
    /// Conditional branches encoded with an inverted predicate.
    pub inverted_branches: usize,
    /// Conditional branches needing a trailing unconditional branch.
    pub split_branches: usize,
    /// Blocks statically reachable (identical in source and image).
    pub reachable_blocks: usize,
}

/// How one block's control leaves it in the image, reconstructed by the
/// walker.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ImageExit {
    /// Falls off the end of the region into the next block.
    FallThrough(BlockId),
    /// Unconditional branch to a block.
    Branch(BlockId),
    /// Conditional branch: taken target + fall-through (or trailing
    /// unconditional) target, with whether the predicate was inverted.
    Cond {
        taken: BlockId,
        other: BlockId,
        inverted: bool,
        split: bool,
    },
    /// Jump table: in-range targets then default.
    Table(Vec<BlockId>),
    /// Return or halt: no successors.
    Stop,
}

impl ImageExit {
    fn successors(&self) -> Vec<BlockId> {
        match self {
            ImageExit::FallThrough(t) | ImageExit::Branch(t) => vec![*t],
            ImageExit::Cond { taken, other, .. } => vec![*taken, *other],
            ImageExit::Table(ts) => ts.clone(),
            ImageExit::Stop => Vec::new(),
        }
    }
}

/// Validates that `image` is a faithful lowering of `program` under
/// `layout`.
///
/// # Errors
/// Returns the first divergence found, naming the offending block and
/// edge. A passing result is a proof that every reachable control path of
/// the image corresponds to the identical path of the source CFG.
pub fn validate_translation(
    program: &Program,
    layout: &Layout,
    image: &Image,
) -> Result<TranslationReport, ValidationError> {
    verify_layout(program, layout).map_err(|e| ValidationError::BadLayout(e.to_string()))?;
    let n = program.blocks.len();
    check_attribution(program, layout, image)?;

    // Region bounds per block, in layout order.
    let mut region_end = vec![0u32; n];
    for (pos, &b) in layout.order.iter().enumerate() {
        let end = match layout.order.get(pos + 1) {
            Some(&nb) => image.block_start[nb.index()],
            None => u32::try_from(image.code.len()).expect("image verified < 2^32"),
        };
        region_end[b.index()] = end;
    }
    let owner_of = |idx: u32| image.block_of[idx as usize];

    let cfg = SourceCfg::of(program);
    let mut report = TranslationReport {
        blocks: n,
        ..TranslationReport::default()
    };
    let mut exits: Vec<Option<ImageExit>> = vec![None; n];

    for (pos, &b) in layout.order.iter().enumerate() {
        let blk = program.block(b);
        let start = image.block_start[b.index()] as usize;
        let end = region_end[b.index()] as usize;
        let region = &image.code[start..end];
        let next = layout.order.get(pos + 1).copied();

        // 1. Body equivalence, instruction by instruction.
        if region.len() < blk.instrs.len() {
            return Err(ValidationError::TruncatedBlock {
                block: b,
                region: region.len(),
                body: blk.instrs.len(),
            });
        }
        for (off, (src, got)) in blk.instrs.iter().zip(region).enumerate() {
            body_equivalent(program, image, b, off, src, got)?;
            if let Instr::Call { .. } = src {
                report.calls += 1;
            }
        }
        report.body_instrs += blk.instrs.len();

        // 2. Terminator realization.
        let tail = &region[blk.instrs.len()..];
        let exit = decode_exit(image, b, &blk.term, tail, next, &mut report)?;

        // 3. Edge-set equivalence against the source CFG.
        let mut found = exit.successors();
        found.dedup();
        let mut f_sorted = found.clone();
        f_sorted.sort_unstable();
        f_sorted.dedup();
        let mut e_sorted = cfg.succs[b.index()].clone();
        e_sorted.sort_unstable();
        if f_sorted != e_sorted {
            return Err(ValidationError::EdgeMismatch {
                block: b,
                expected: cfg.succs[b.index()].clone(),
                found,
            });
        }
        report.edges += e_sorted.len();
        exits[b.index()] = Some(exit);
    }

    // 4. Reachability equivalence: walk the reconstructed image CFG the
    // same way SourceCfg walks the source (successors + call entries) and
    // require the identical block set.
    let mut image_reach = vec![false; n];
    let entry_block = owner_of(image.entry);
    let mut work = vec![entry_block];
    image_reach[entry_block.index()] = true;
    while let Some(b) = work.pop() {
        let exit = exits[b.index()].as_ref().expect("all blocks decoded");
        let callees = cfg.calls[b.index()].iter().map(|&c| program.proc(c).entry);
        for t in exit.successors().into_iter().chain(callees) {
            if !image_reach[t.index()] {
                image_reach[t.index()] = true;
                work.push(t);
            }
        }
    }
    for (i, (&in_image, &in_source)) in image_reach.iter().zip(&cfg.reachable).enumerate() {
        if in_image != in_source {
            return Err(ValidationError::ReachabilityDivergence {
                block: BlockId(u32::try_from(i).expect("verified")),
                in_source,
                in_image,
            });
        }
    }
    report.reachable_blocks = cfg.reachable_count();
    Ok(report)
}

/// Decodes one block's exit and proves it realizes the source terminator.
/// Exposed to the lint engine via [`decode_exits`].
fn decode_exit(
    image: &Image,
    b: BlockId,
    term: &Terminator,
    tail: &[LInstr],
    next: Option<BlockId>,
    report: &mut TranslationReport,
) -> Result<ImageExit, ValidationError> {
    let start_of = |t: BlockId| image.block_start[t.index()];
    // Maps an encoded target index to the block it must start; a target
    // inside a block is corruption.
    let block_at = |target: u32| -> Result<BlockId, ValidationError> {
        let lands_in = image.block_of[target as usize];
        if start_of(lands_in) == target {
            Ok(lands_in)
        } else {
            Err(ValidationError::JumpIntoMiddle {
                block: b,
                target,
                lands_in,
            })
        }
    };
    let mismatch = |found: &str| ValidationError::TerminatorMismatch {
        block: b,
        expected: render_term(term),
        found: found.to_string(),
    };

    match term {
        Terminator::Jump(t) => match tail {
            [] => {
                // Eliminated unconditional: the target must be the next
                // block in the layout.
                let next = next.ok_or_else(|| mismatch("fall-through off the end of the image"))?;
                if next != *t {
                    return Err(ValidationError::EdgeMismatch {
                        block: b,
                        expected: vec![*t],
                        found: vec![next],
                    });
                }
                report.fallthroughs += 1;
                Ok(ImageExit::FallThrough(*t))
            }
            [LInstr::Br { target }] => {
                let dest = block_at(*target)?;
                if dest != *t {
                    return Err(ValidationError::EdgeMismatch {
                        block: b,
                        expected: vec![*t],
                        found: vec![dest],
                    });
                }
                Ok(ImageExit::Branch(dest))
            }
            _ => Err(mismatch(&render_tail(tail))),
        },
        Terminator::Branch {
            cond,
            reg,
            rhs,
            then_,
            else_,
        } => {
            let (icond, ireg, irhs, target, other, split) = match tail {
                [LInstr::BrCond {
                    cond: c,
                    reg: r,
                    rhs: o,
                    target,
                }] => {
                    let ft = next
                        .ok_or_else(|| mismatch("conditional branch with no fall-through block"))?;
                    (*c, *r, *o, block_at(*target)?, ft, false)
                }
                [LInstr::BrCond {
                    cond: c,
                    reg: r,
                    rhs: o,
                    target,
                }, LInstr::Br { target: t2 }] => {
                    (*c, *r, *o, block_at(*target)?, block_at(*t2)?, true)
                }
                _ => return Err(mismatch(&render_tail(tail))),
            };
            if ireg != *reg || irhs != *rhs {
                return Err(mismatch(&format!(
                    "conditional on {ireg} (source compares {reg})"
                )));
            }
            // Polarity proof: the taken arm must be `then_` under the
            // source predicate, or `else_` under its explicit inversion.
            let inverted = if icond == *cond {
                false
            } else if icond == cond.invert() {
                true
            } else {
                return Err(mismatch(&format!(
                    "predicate {icond:?} is neither {cond:?} nor its inversion"
                )));
            };
            let (want_taken, want_other) = if inverted {
                (*else_, *then_)
            } else {
                (*then_, *else_)
            };
            if target != want_taken || other != want_other {
                return Err(ValidationError::BranchPolarity {
                    block: b,
                    then_: *then_,
                    else_: *else_,
                    taken: target,
                    fallthrough: other,
                });
            }
            if inverted {
                report.inverted_branches += 1;
            }
            if split {
                report.split_branches += 1;
            }
            Ok(ImageExit::Cond {
                taken: target,
                other,
                inverted,
                split,
            })
        }
        Terminator::JumpTable {
            reg,
            targets,
            default,
        } => match tail {
            [LInstr::JmpTbl {
                reg: r,
                table,
                default: d,
            }] => {
                if r != reg {
                    return Err(mismatch(&format!(
                        "table indexed by {r} (source uses {reg})"
                    )));
                }
                if table.len() != targets.len() {
                    return Err(mismatch(&format!(
                        "table with {} entries (source has {})",
                        table.len(),
                        targets.len()
                    )));
                }
                let mut succ = Vec::with_capacity(targets.len() + 1);
                for (&enc, &src) in table.iter().zip(targets) {
                    let dest = block_at(enc)?;
                    if dest != src {
                        return Err(ValidationError::EdgeMismatch {
                            block: b,
                            expected: vec![src],
                            found: vec![dest],
                        });
                    }
                    succ.push(dest);
                }
                let dd = block_at(*d)?;
                if dd != *default {
                    return Err(ValidationError::EdgeMismatch {
                        block: b,
                        expected: vec![*default],
                        found: vec![dd],
                    });
                }
                succ.push(dd);
                Ok(ImageExit::Table(succ))
            }
            _ => Err(mismatch(&render_tail(tail))),
        },
        Terminator::Return => match tail {
            [LInstr::Ret] => Ok(ImageExit::Stop),
            _ => Err(mismatch(&render_tail(tail))),
        },
        Terminator::Halt => match tail {
            [LInstr::Halt] => Ok(ImageExit::Stop),
            _ => Err(mismatch(&render_tail(tail))),
        },
    }
}

/// Cross-checks the image's attribution tables against program + layout.
fn check_attribution(
    program: &Program,
    layout: &Layout,
    image: &Image,
) -> Result<(), ValidationError> {
    let n = program.blocks.len();
    let bad = |m: String| Err(ValidationError::BadAttribution(m));
    if image.block_start.len() != n {
        return bad(format!(
            "block_start has {} entries for {} blocks",
            image.block_start.len(),
            n
        ));
    }
    if image.block_of.len() != image.code.len() {
        return bad(format!(
            "block_of covers {} of {} instructions",
            image.block_of.len(),
            image.code.len()
        ));
    }
    if image.proc_entry.len() != program.procs.len() {
        return bad(format!(
            "proc_entry has {} entries for {} procedures",
            image.proc_entry.len(),
            program.procs.len()
        ));
    }
    // Starts strictly increase along the layout and attribute to the
    // owning block.
    let mut prev: Option<u32> = None;
    for &b in &layout.order {
        let s = image.block_start[b.index()];
        if (s as usize) >= image.code.len() {
            return bad(format!("block {b} starts at {s}, beyond the image"));
        }
        if let Some(p) = prev {
            if s <= p {
                return bad(format!("block {b} starts at {s}, not after {p}"));
            }
        }
        if image.block_of[s as usize] != b {
            return bad(format!(
                "instruction {s} attributed to {}, expected {b}",
                image.block_of[s as usize]
            ));
        }
        prev = Some(s);
    }
    let owner = program.owner_of_blocks();
    if image.owner != owner {
        return bad("owner table disagrees with program procedures".to_string());
    }
    for (pi, p) in program.procs.iter().enumerate() {
        let expect = image.block_start[p.entry.index()];
        if image.proc_entry[pi] != expect {
            return Err(ValidationError::ProcEntryMismatch {
                proc: ProcId(u32::try_from(pi).expect("verified")),
                image_entry: image.proc_entry[pi],
                block_start: expect,
            });
        }
    }
    let program_entry = image.block_start[program.proc(program.entry).entry.index()];
    if image.entry != program_entry {
        return bad(format!(
            "image entry {} is not the program entry block start {program_entry}",
            image.entry
        ));
    }
    Ok(())
}

/// Proves one body instruction is the lowering of its source counterpart.
/// Deliberately *not* implemented by calling the linker's own lowering:
/// this is an independent statement of the correspondence.
fn body_equivalent(
    program: &Program,
    image: &Image,
    b: BlockId,
    off: usize,
    src: &Instr,
    got: &LInstr,
) -> Result<(), ValidationError> {
    let ok = match (src, got) {
        (Instr::Imm { dst, value }, LInstr::Imm { dst: d, value: v }) => dst == d && value == v,
        (Instr::Mov { dst, src }, LInstr::Mov { dst: d, src: s }) => dst == d && src == s,
        (
            Instr::Bin { op, dst, lhs, rhs },
            LInstr::Bin {
                op: o,
                dst: d,
                lhs: l,
                rhs: r,
            },
        ) => op == o && dst == d && lhs == l && rhs == r,
        (
            Instr::Load {
                dst,
                base,
                offset,
                space,
            },
            LInstr::Load {
                dst: d,
                base: ba,
                offset: of,
                space: sp,
            },
        ) => dst == d && base == ba && offset == of && space == sp,
        (
            Instr::Store {
                src,
                base,
                offset,
                space,
            },
            LInstr::Store {
                src: s,
                base: ba,
                offset: of,
                space: sp,
            },
        ) => src == s && base == ba && offset == of && space == sp,
        (
            Instr::AtomicRmw {
                op,
                dst,
                base,
                offset,
                src,
                space,
            },
            LInstr::AtomicRmw {
                op: o,
                dst: d,
                base: ba,
                offset: of,
                src: s,
                space: sp,
            },
        ) => op == o && dst == d && base == ba && offset == of && src == s && space == sp,
        (Instr::Call { callee }, LInstr::Call { callee: c, target }) if callee == c => {
            let expected = image.proc_entry[callee.index()];
            if *target != expected {
                return Err(ValidationError::CallTargetMismatch {
                    block: b,
                    callee: *callee,
                    expected,
                    found: *target,
                });
            }
            // The call must land on the callee's entry *block*.
            let entry_block = program.proc(*callee).entry;
            if image.block_start[entry_block.index()] != *target {
                return Err(ValidationError::CallTargetMismatch {
                    block: b,
                    callee: *callee,
                    expected: image.block_start[entry_block.index()],
                    found: *target,
                });
            }
            true
        }
        (Instr::Syscall { code }, LInstr::Syscall { code: c }) => code == c,
        (Instr::Emit { src }, LInstr::Emit { src: s }) => src == s,
        (Instr::Nop, LInstr::Nop) => true,
        _ => false,
    };
    if ok {
        Ok(())
    } else {
        Err(ValidationError::BodyMismatch {
            block: b,
            offset: off,
            expected: format!("{src:?}"),
            found: format!("{got:?}"),
        })
    }
}

fn render_term(t: &Terminator) -> String {
    match t {
        Terminator::Jump(t) => format!("jump {t}"),
        Terminator::Branch {
            cond, then_, else_, ..
        } => format!("branch {cond:?} ? {then_} : {else_}"),
        Terminator::JumpTable { targets, .. } => format!("jump-table[{}]", targets.len()),
        Terminator::Return => "return".to_string(),
        Terminator::Halt => "halt".to_string(),
    }
}

fn render_tail(tail: &[LInstr]) -> String {
    if tail.is_empty() {
        "fall-through (no terminator instruction)".to_string()
    } else {
        tail.iter()
            .map(|i| format!("{i:?}"))
            .collect::<Vec<_>>()
            .join("; ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codelayout_core::{LayoutPipeline, OptimizationSet};
    use codelayout_ir::link::link;
    use codelayout_ir::{Cond, Operand, ProcBuilder, ProgramBuilder, Reg};
    use codelayout_profile::Profile;

    /// main (b0) calls a and z; a = entry b1 branching to hot b2 / cold b3,
    /// both joining at b4; z = b5.
    fn program() -> Program {
        let mut pb = ProgramBuilder::new("tv");
        let main = pb.declare_proc("main");
        let pa = pb.declare_proc("a");
        let z = pb.declare_proc("z_cold");

        let mut f = ProcBuilder::new();
        f.call(pa).call(z);
        f.halt();
        pb.define_proc(main, f).unwrap();

        let mut g = ProcBuilder::new();
        let e = g.entry();
        let hot = g.new_block();
        let cold = g.new_block();
        let out = g.new_block();
        g.select(e);
        g.branch(Cond::Eq, Reg(1), Operand::Imm(0), hot, cold);
        g.select(hot);
        g.nop();
        g.jump(out);
        g.select(cold);
        g.nop();
        g.jump(out);
        g.select(out);
        g.ret();
        pb.define_proc(pa, g).unwrap();

        let mut h = ProcBuilder::new();
        h.nop();
        h.ret();
        pb.define_proc(z, h).unwrap();

        pb.finish(main).unwrap()
    }

    fn profile(p: &Program) -> Profile {
        let mut prof = Profile::new(p.blocks.len());
        prof.block_counts = vec![1000, 1000, 990, 10, 1000, 0];
        prof.edge_counts.insert((1, 2), 990);
        prof.edge_counts.insert((1, 3), 10);
        prof.edge_counts.insert((2, 4), 990);
        prof.edge_counts.insert((3, 4), 10);
        prof.call_counts.insert((0, 1), 1000);
        prof
    }

    fn chained() -> (Program, Layout, Image) {
        let p = program();
        let prof = profile(&p);
        let layout = LayoutPipeline::new(&p, &prof).build(OptimizationSet::CHAIN);
        let image = link(&p, &layout, 0x1000).unwrap();
        (p, layout, image)
    }

    #[test]
    fn accepts_every_paper_series_layout() {
        let p = program();
        let prof = profile(&p);
        let pipe = LayoutPipeline::new(&p, &prof);
        for (name, set) in OptimizationSet::paper_series() {
            let layout = pipe.build(set);
            let image = link(&p, &layout, 0x1000).unwrap();
            let report =
                validate_translation(&p, &layout, &image).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(report.blocks, p.blocks.len(), "{name}");
            assert_eq!(report.calls, 2, "{name}");
            assert_eq!(report.reachable_blocks, 6, "{name}");
            // b1's two branch arms + the two join jumps.
            assert_eq!(report.edges, 4, "{name}");
        }
    }

    #[test]
    fn reports_inversions_and_fallthroughs_for_chained_layout() {
        let (p, layout, image) = chained();
        let report = validate_translation(&p, &layout, &image).unwrap();
        // Chaining puts the hot arm (b2) right after b1, so the branch is
        // inverted, and b2 -> b4 becomes a free fall-through.
        assert!(report.inverted_branches >= 1);
        assert!(report.fallthroughs >= 1);
    }

    /// The acceptance-criteria test: swapping a conditional branch's
    /// targets after chaining — same successor *set*, wrong semantics —
    /// must be rejected with a diagnostic naming the bad edge.
    #[test]
    fn rejects_swapped_branch_targets_after_chaining() {
        let (p, layout, mut image) = chained();
        // b1's region is exactly its inverted BrCond (empty body). Retarget
        // it at the hot arm b2 instead of the cold arm b3: the edge set
        // {b2, b3} is unchanged, but the polarity is now corrupted.
        let at = image.block_start[1] as usize;
        match &mut image.code[at] {
            LInstr::BrCond { cond, target, .. } => {
                assert_eq!(*cond, Cond::Ne, "chaining inverted the branch");
                assert_eq!(*target, image.block_start[3]);
                *target = image.block_start[2];
            }
            other => panic!("expected BrCond at b1, got {other:?}"),
        }
        let err = validate_translation(&p, &layout, &image).unwrap_err();
        match &err {
            ValidationError::BranchPolarity {
                block,
                then_,
                else_,
                taken,
                ..
            } => {
                assert_eq!(*block, BlockId(1));
                assert_eq!(*then_, BlockId(2));
                assert_eq!(*else_, BlockId(3));
                assert_eq!(*taken, BlockId(2));
            }
            other => panic!("expected BranchPolarity, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("polarity"), "{msg}");
        assert!(
            msg.contains("b1->b2"),
            "diagnostic names the bad edge: {msg}"
        );
    }

    #[test]
    fn rejects_retargeted_unconditional_branch() {
        let p = program();
        let layout = Layout::natural(&p);
        let mut image = link(&p, &layout, 0x1000).unwrap();
        // In the natural layout b2 ends with `br b4` (b3 is next). Point it
        // at b5 instead.
        let at = image.block_start[3] as usize - 1;
        match &mut image.code[at] {
            LInstr::Br { target } => {
                assert_eq!(*target, image.block_start[4]);
                *target = image.block_start[5];
            }
            other => panic!("expected Br ending b2, got {other:?}"),
        }
        match validate_translation(&p, &layout, &image).unwrap_err() {
            ValidationError::EdgeMismatch {
                block,
                expected,
                found,
            } => {
                assert_eq!(block, BlockId(2));
                assert_eq!(expected, vec![BlockId(4)]);
                assert_eq!(found, vec![BlockId(5)]);
            }
            other => panic!("expected EdgeMismatch, got {other:?}"),
        }
    }

    #[test]
    fn rejects_transfer_into_block_interior() {
        let (p, layout, mut image) = chained();
        // main's region (b0) is three instructions long; index start+1 is
        // mid-block.
        let mid = image.block_start[0] + 1;
        let at = image.block_start[1] as usize;
        match &mut image.code[at] {
            LInstr::BrCond { target, .. } => *target = mid,
            other => panic!("expected BrCond at b1, got {other:?}"),
        }
        match validate_translation(&p, &layout, &image).unwrap_err() {
            ValidationError::JumpIntoMiddle {
                block,
                target,
                lands_in,
            } => {
                assert_eq!(block, BlockId(1));
                assert_eq!(target, mid);
                assert_eq!(lands_in, BlockId(0));
            }
            other => panic!("expected JumpIntoMiddle, got {other:?}"),
        }
    }

    #[test]
    fn rejects_corrupted_call_target() {
        let (p, layout, mut image) = chained();
        let at = image.block_start[0] as usize;
        match &mut image.code[at] {
            LInstr::Call { target, .. } => *target = image.block_start[5],
            other => panic!("expected Call at b0, got {other:?}"),
        }
        match validate_translation(&p, &layout, &image).unwrap_err() {
            ValidationError::CallTargetMismatch { block, callee, .. } => {
                assert_eq!(block, BlockId(0));
                assert_eq!(callee, ProcId(1));
            }
            other => panic!("expected CallTargetMismatch, got {other:?}"),
        }
    }

    #[test]
    fn rejects_rewritten_body_instruction() {
        let (p, layout, mut image) = chained();
        // b2's body is a single nop; replace it.
        let at = image.block_start[2] as usize;
        assert_eq!(image.code[at], LInstr::Nop);
        image.code[at] = LInstr::Imm {
            dst: Reg(1),
            value: 7,
        };
        match validate_translation(&p, &layout, &image).unwrap_err() {
            ValidationError::BodyMismatch { block, offset, .. } => {
                assert_eq!(block, BlockId(2));
                assert_eq!(offset, 0);
            }
            other => panic!("expected BodyMismatch, got {other:?}"),
        }
    }

    #[test]
    fn rejects_broken_attribution_tables() {
        let (p, layout, mut image) = chained();
        image.proc_entry[2] = image.proc_entry[2].wrapping_add(1);
        assert!(matches!(
            validate_translation(&p, &layout, &image).unwrap_err(),
            ValidationError::ProcEntryMismatch {
                proc: ProcId(2),
                ..
            }
        ));

        let (_, _, mut image2) = chained();
        image2.entry = image2.block_start[5];
        assert!(matches!(
            validate_translation(&p, &layout, &image2).unwrap_err(),
            ValidationError::BadAttribution(_)
        ));
    }

    #[test]
    fn rejects_layout_image_disagreement() {
        // Validate a *different* layout than the one the image was linked
        // under: attribution cross-checks must catch it.
        let p = program();
        let prof = profile(&p);
        let pipe = LayoutPipeline::new(&p, &prof);
        let chained_layout = pipe.build(OptimizationSet::CHAIN);
        let image = link(&p, &Layout::natural(&p), 0x1000).unwrap();
        assert!(validate_translation(&p, &chained_layout, &image).is_err());
    }

    #[test]
    fn rejects_non_permutation_layout() {
        let (p, _, image) = chained();
        let bad = Layout {
            order: vec![BlockId(0); p.blocks.len()],
        };
        assert!(matches!(
            validate_translation(&p, &bad, &image).unwrap_err(),
            ValidationError::BadLayout(_)
        ));
    }

    #[test]
    fn validates_jump_tables_elementwise() {
        let mut pb = ProgramBuilder::new("jt");
        let main = pb.declare_proc("main");
        let mut f = ProcBuilder::new();
        let e = f.entry();
        let t0 = f.new_block();
        let t1 = f.new_block();
        f.select(e);
        f.jump_table(Reg(1), vec![t0, t1], t1);
        f.select(t0);
        f.halt();
        f.select(t1);
        f.halt();
        pb.define_proc(main, f).unwrap();
        let p = pb.finish(main).unwrap();
        let layout = Layout::natural(&p);
        let mut image = link(&p, &layout, 0).unwrap();
        validate_translation(&p, &layout, &image).unwrap();

        // Swap the two table entries: an edge-set comparison would still
        // pass, the elementwise check must not.
        match &mut image.code[0] {
            LInstr::JmpTbl { table, .. } => table.swap(0, 1),
            other => panic!("expected JmpTbl, got {other:?}"),
        }
        assert!(matches!(
            validate_translation(&p, &layout, &image).unwrap_err(),
            ValidationError::EdgeMismatch {
                block: BlockId(0),
                ..
            }
        ));
    }
}
