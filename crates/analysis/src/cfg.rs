//! Source-level control-flow facts shared by the validator and the linter.
//!
//! Everything here is derived from the [`Program`] alone — no layout, no
//! image — so it is the *specification* side of translation validation:
//! the reconstructed image CFG must be provably equivalent to what this
//! module computes.

use codelayout_ir::{BlockId, Instr, ProcId, Program};

/// The source control-flow graph at block granularity: terminator
/// successors and call edges, plus the static reachability closure.
#[derive(Debug, Clone)]
pub struct SourceCfg {
    /// Terminator successors of each block, deduplicated, in terminator
    /// order (indexed by [`BlockId`]).
    pub succs: Vec<Vec<BlockId>>,
    /// Procedures called from each block's body, in body order, one entry
    /// per call site (indexed by [`BlockId`]).
    pub calls: Vec<Vec<ProcId>>,
    /// Whether each block is statically reachable from the program entry,
    /// following terminator edges and call edges into procedure entries
    /// (indexed by [`BlockId`]).
    pub reachable: Vec<bool>,
}

impl SourceCfg {
    /// Extracts the CFG of a program.
    pub fn of(program: &Program) -> SourceCfg {
        let n = program.blocks.len();
        let mut succs: Vec<Vec<BlockId>> = Vec::with_capacity(n);
        let mut calls: Vec<Vec<ProcId>> = Vec::with_capacity(n);
        for b in &program.blocks {
            let mut s: Vec<BlockId> = Vec::new();
            for t in b.term.successors() {
                if !s.contains(&t) {
                    s.push(t);
                }
            }
            succs.push(s);
            calls.push(
                b.instrs
                    .iter()
                    .filter_map(|i| match i {
                        Instr::Call { callee } => Some(*callee),
                        _ => None,
                    })
                    .collect(),
            );
        }

        // Reachability: a block reaches its terminator successors, and the
        // entry block of every procedure it calls. Calls return into the
        // same block, so the block's own successors stay reachable
        // regardless of what the callee does.
        let mut reachable = vec![false; n];
        let entry = program.proc(program.entry).entry;
        let mut work = vec![entry];
        reachable[entry.index()] = true;
        while let Some(b) = work.pop() {
            let i = b.index();
            for &t in &succs[i] {
                if !reachable[t.index()] {
                    reachable[t.index()] = true;
                    work.push(t);
                }
            }
            for &callee in &calls[i] {
                let e = program.proc(callee).entry;
                if !reachable[e.index()] {
                    reachable[e.index()] = true;
                    work.push(e);
                }
            }
        }

        SourceCfg {
            succs,
            calls,
            reachable,
        }
    }

    /// Number of statically reachable blocks.
    pub fn reachable_count(&self) -> usize {
        self.reachable.iter().filter(|&&r| r).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codelayout_ir::{Cond, Operand, ProcBuilder, ProgramBuilder, Reg};

    /// main: b0 branch (b1, b2); b1 -> b3; b2 -> b3; b3 calls leaf, halts.
    /// dead: b5 (never called).
    fn program() -> Program {
        let mut pb = ProgramBuilder::new("cfg");
        let main = pb.declare_proc("main");
        let leaf = pb.declare_proc("leaf");
        let dead = pb.declare_proc("dead");

        let mut f = ProcBuilder::new();
        let b0 = f.entry();
        let b1 = f.new_block();
        let b2 = f.new_block();
        let b3 = f.new_block();
        f.select(b0);
        f.branch(Cond::Eq, Reg(1), Operand::Imm(0), b1, b2);
        f.select(b1);
        f.jump(b3);
        f.select(b2);
        f.jump(b3);
        f.select(b3);
        f.call(leaf);
        f.halt();
        pb.define_proc(main, f).unwrap();

        let mut g = ProcBuilder::new();
        g.nop();
        g.ret();
        pb.define_proc(leaf, g).unwrap();

        let mut h = ProcBuilder::new();
        h.nop();
        h.ret();
        pb.define_proc(dead, h).unwrap();

        pb.finish(main).unwrap()
    }

    #[test]
    fn successors_and_calls() {
        let p = program();
        let cfg = SourceCfg::of(&p);
        assert_eq!(cfg.succs[0], vec![BlockId(1), BlockId(2)]);
        assert_eq!(cfg.succs[1], vec![BlockId(3)]);
        assert_eq!(cfg.succs[3], Vec::<BlockId>::new());
        assert_eq!(cfg.calls[3], vec![ProcId(1)]);
        assert!(cfg.calls[0].is_empty());
    }

    #[test]
    fn reachability_follows_calls_but_not_dead_procs() {
        let p = program();
        let cfg = SourceCfg::of(&p);
        // main's four blocks + leaf's block reachable; dead proc is not.
        assert_eq!(cfg.reachable_count(), 5);
        assert!(cfg.reachable[4], "leaf entry reachable through call");
        assert!(!cfg.reachable[5], "dead proc not reachable");
    }

    #[test]
    fn duplicate_successors_are_deduplicated() {
        let mut pb = ProgramBuilder::new("dup");
        let main = pb.declare_proc("main");
        let mut f = ProcBuilder::new();
        let b0 = f.entry();
        let b1 = f.new_block();
        f.select(b0);
        f.branch(Cond::Eq, Reg(1), Operand::Imm(0), b1, b1);
        f.select(b1);
        f.halt();
        pb.define_proc(main, f).unwrap();
        let p = pb.finish(main).unwrap();
        let cfg = SourceCfg::of(&p);
        assert_eq!(cfg.succs[0], vec![BlockId(1)]);
    }
}
