//! Static (profile-free) execution-frequency estimation.
//!
//! This module answers "what would the profile look like?" without ever
//! running the program. It layers three classic ideas:
//!
//! 1. **Ball–Larus branch heuristics** assign each conditional branch a
//!    taken-probability from syntactic evidence: back edges are taken,
//!    loop exits are not, arms leading to calls or returns are avoided,
//!    and equality tests fail (see [`branch_probabilities`] for the
//!    exact table). Independent heuristics are combined with the
//!    Wu–Larus (Dempster–Shafer) rule.
//! 2. **Frequency propagation** turns probabilities into absolute
//!    counts: a fixed token mass enters each procedure and flows along
//!    edges in proportion to the probabilities. The solver is a
//!    deterministic integer fixed point — each reverse-postorder pass
//!    moves all pending mass forward and defers mass on retreating
//!    edges to the next pass, so loop iteration counts emerge from the
//!    back-edge probability (a clamped probability `p` yields an
//!    expected `1/(1-p)` trips).
//! 3. **Call-graph propagation** orders procedures callers-first over
//!    the SCC condensation of the call graph; each call site seeds its
//!    callee with the site's block count. Recursive back-calls beyond
//!    the one unrolling this order provides are dropped (from both the
//!    seed *and* the reported call counts, keeping flow exact).
//!
//! The result is an ordinary [`codelayout_profile::Profile`], so every
//! consumer of measured profiles — the layout pipeline, ext-TSP scoring,
//! the lint battery — runs unchanged on static estimates. Conservation
//! is exact by construction: `Profile::flow_violations` with slack
//! [`STATIC_ENTRY_COUNT`] reports nothing, and every block's outgoing
//! edge estimates sum to its count.

use crate::cfg::SourceCfg;
use crate::dom::DomTree;
use crate::loops::LoopForest;
use codelayout_ir::{BlockId, Cond, Instr, Operand, ProcId, Program, Terminator};
use codelayout_profile::Profile;

/// Fixed-point scale for branch probabilities: a probability of 1.0.
pub const PROB_SCALE: u64 = 1_000_000;

/// Token mass injected at the program entry — the static stand-in for
/// "the process ran once". Also the `slack` to pass to
/// [`Profile::flow_violations`] when checking a static profile.
pub const STATIC_ENTRY_COUNT: u64 = 1_000_000;

/// Probability clamp: no branch arm is ever estimated below 2% or above
/// 98%, which bounds implied loop trip counts at 50 and guarantees the
/// propagation fixed point decays geometrically.
const PROB_CLAMP: u64 = 20_000;

/// Maximum reverse-postorder passes before residual loop mass is
/// drained along forward edges only. With the 98% clamp the residual
/// after this many passes is a handful of tokens.
const PASS_LIMIT: usize = 512;

/// Ball–Larus heuristic probabilities (scaled by [`PROB_SCALE`]),
/// applied to the arm the heuristic predicts *taken*.
mod heuristic {
    /// Loop-branch heuristic: a dominance back edge is taken.
    pub const LOOP_BACK: u64 = 880_000;
    /// Loop-exit heuristic: the arm staying in the loop is taken.
    pub const LOOP_STAY: u64 = 800_000;
    /// Call heuristic: the arm whose target block performs no call is
    /// taken (calls live on cold error/slow paths).
    pub const NO_CALL: u64 = 780_000;
    /// Return heuristic: the arm whose target block does not
    /// immediately return is taken.
    pub const NO_RETURN: u64 = 720_000;
    /// Opcode/guard heuristic: equality tests (and comparisons against
    /// non-positive immediates) fail — `Eq` arms are unlikely, `Ne`
    /// arms likely.
    pub const OPCODE: u64 = 840_000;
}

/// The shared static-analysis bundle: source CFG, dominator trees and
/// the natural-loop forest, computed once and reused by the frequency
/// estimator and the loop-aware lints.
#[derive(Debug, Clone)]
pub struct StaticAnalysis {
    /// Deduplicated terminator/call edges of the program.
    pub cfg: SourceCfg,
    /// Per-procedure dominator trees.
    pub dom: DomTree,
    /// Natural loops with nesting depths.
    pub loops: LoopForest,
}

impl StaticAnalysis {
    /// Runs the full static-analysis stack over `program`.
    pub fn of(program: &Program) -> StaticAnalysis {
        let cfg = SourceCfg::of(program);
        let dom = DomTree::compute(program, &cfg);
        let loops = LoopForest::compute(program, &cfg, &dom);
        StaticAnalysis { cfg, dom, loops }
    }
}

/// Combines two independent probability estimates for the same event
/// with the Wu–Larus (Dempster–Shafer) rule, in fixed point:
/// `t' = t·h / (t·h + (1−t)·(1−h))`.
fn combine(t: u64, h: u64) -> u64 {
    let num = u128::from(t) * u128::from(h);
    let den = num + u128::from(PROB_SCALE - t) * u128::from(PROB_SCALE - h);
    if den == 0 {
        return PROB_SCALE / 2;
    }
    u64::try_from(num * u128::from(PROB_SCALE) / den).expect("probability fits u64")
}

/// Per-block successor probabilities, aligned with `sa.cfg.succs`: for
/// each block, `(successor, probability)` pairs in deduplicated
/// terminator order, summing exactly to [`PROB_SCALE`] (empty for
/// `Return`/`Halt` blocks and blocks unreachable in their procedure).
///
/// Conditional branches start at 50/50 and fold in every applicable
/// heuristic (loop back edge, loop exit, call, return, opcode — in that
/// fixed order) with the Wu–Larus rule; jump tables split uniformly by
/// raw target multiplicity; unconditional jumps get probability 1.
pub fn branch_probabilities(program: &Program, sa: &StaticAnalysis) -> Vec<Vec<(BlockId, u64)>> {
    let n = program.blocks.len();
    let mut probs: Vec<Vec<(BlockId, u64)>> = vec![Vec::new(); n];
    for (bi, block) in program.blocks.iter().enumerate() {
        let b = BlockId(u32::try_from(bi).expect("fits u32"));
        if !sa.dom.is_reachable(b) {
            continue;
        }
        let succs = &sa.cfg.succs[bi];
        if succs.is_empty() {
            continue;
        }
        if succs.len() == 1 {
            probs[bi] = vec![(succs[0], PROB_SCALE)];
            continue;
        }
        match &block.term {
            Terminator::Branch {
                cond,
                rhs,
                then_,
                else_,
                ..
            } => {
                let p_then = branch_taken_probability(program, sa, b, *cond, rhs, *then_, *else_);
                // `succs` is [then_, else_] deduplicated; len == 2 here.
                probs[bi] = vec![(*then_, p_then), (*else_, PROB_SCALE - p_then)];
                if succs[0] != *then_ {
                    probs[bi].swap(0, 1);
                }
            }
            Terminator::JumpTable {
                targets, default, ..
            } => {
                // Uniform over raw entries; duplicates of one target merge.
                let raw_total = 1 + u64::try_from(targets.len()).expect("fits u64");
                let mut acc: Vec<(BlockId, u64)> = succs.iter().map(|&s| (s, 0)).collect();
                let bump = |acc: &mut Vec<(BlockId, u64)>, t: BlockId| {
                    let slot = acc.iter_mut().find(|(s, _)| *s == t).expect("succ present");
                    slot.1 += 1;
                };
                bump(&mut acc, *default);
                for &t in targets {
                    bump(&mut acc, t);
                }
                let mut assigned = 0;
                for entry in &mut acc {
                    entry.1 = entry.1 * PROB_SCALE / raw_total;
                    assigned += entry.1;
                }
                acc[0].1 += PROB_SCALE - assigned;
                probs[bi] = acc;
            }
            Terminator::Jump(_) | Terminator::Return | Terminator::Halt => {
                unreachable!("multi-successor blocks are branches or tables")
            }
        }
    }
    probs
}

/// The Ball–Larus estimate that a two-way branch takes its `then_` arm.
#[allow(clippy::too_many_arguments)]
fn branch_taken_probability(
    program: &Program,
    sa: &StaticAnalysis,
    b: BlockId,
    cond: Cond,
    rhs: &Operand,
    then_: BlockId,
    else_: BlockId,
) -> u64 {
    let mut p = PROB_SCALE / 2;
    let mut apply = |taken_then: bool, prob: u64| {
        p = combine(p, if taken_then { prob } else { PROB_SCALE - prob });
    };

    // Loop-branch heuristic: exactly one arm is a back edge.
    let back_t = sa.loops.is_back_edge(b, then_);
    let back_e = sa.loops.is_back_edge(b, else_);
    if back_t != back_e {
        apply(back_t, heuristic::LOOP_BACK);
    }

    // Loop-exit heuristic: from inside a loop, prefer the arm that stays.
    if let Some(l) = sa.loops.innermost(b) {
        let stay_t = l.contains(then_);
        let stay_e = l.contains(else_);
        if stay_t != stay_e {
            apply(stay_t, heuristic::LOOP_STAY);
        }
    }

    // Call heuristic: avoid the arm whose block performs a call.
    let has_call = |t: BlockId| {
        program.blocks[t.index()]
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::Call { .. }))
    };
    let call_t = has_call(then_);
    let call_e = has_call(else_);
    if call_t != call_e {
        apply(call_e, heuristic::NO_CALL);
    }

    // Return heuristic: avoid the arm that immediately leaves the
    // procedure (or the program).
    let returns = |t: BlockId| {
        matches!(
            program.blocks[t.index()].term,
            Terminator::Return | Terminator::Halt
        )
    };
    let ret_t = returns(then_);
    let ret_e = returns(else_);
    if ret_t != ret_e {
        apply(ret_e, heuristic::NO_RETURN);
    }

    // Opcode/guard heuristic: equality with anything, or ordering
    // against a non-positive immediate, rarely holds.
    let guard = match (cond, rhs) {
        (Cond::Eq, _) => Some(false),
        (Cond::Ne, _) => Some(true),
        (Cond::Lt | Cond::Le, Operand::Imm(v)) if *v <= 0 => Some(false),
        (Cond::Gt | Cond::Ge, Operand::Imm(v)) if *v <= 0 => Some(true),
        _ => None,
    };
    if let Some(taken_then) = guard {
        apply(taken_then, heuristic::OPCODE);
    }

    p.clamp(PROB_CLAMP, PROB_SCALE - PROB_CLAMP)
}

/// Estimates a full execution profile for `program` from static
/// heuristics alone. See the module docs for the algorithm.
pub fn estimate_static_profile(program: &Program) -> Profile {
    let sa = StaticAnalysis::of(program);
    estimate_static_profile_with(program, &sa)
}

/// [`estimate_static_profile`] with a precomputed analysis bundle.
pub fn estimate_static_profile_with(program: &Program, sa: &StaticAnalysis) -> Profile {
    let probs = branch_probabilities(program, sa);
    let nprocs = program.procs.len();
    let mut profile = Profile::new(program.blocks.len());
    let mut seed: Vec<u64> = vec![0; nprocs];
    seed[program.entry.index()] = STATIC_ENTRY_COUNT;

    let mut pending: Vec<u64> = vec![0; program.blocks.len()];
    let mut deferred: Vec<u64> = vec![0; program.blocks.len()];
    let mut done = vec![false; nprocs];
    for pid in call_schedule(program, &sa.cfg) {
        let pi = pid.index();
        done[pi] = true;
        if seed[pi] == 0 {
            continue;
        }
        propagate_proc(
            sa,
            &probs,
            pid,
            seed[pi],
            &mut profile,
            &mut pending,
            &mut deferred,
        );
        // Each call site runs once per execution of its block; calls
        // into procedures whose counts are already final (recursive
        // back-calls) are dropped entirely to keep flow exact.
        for &b in &sa.dom.proc_rpo()[pi] {
            let c = profile.block_counts[b.index()];
            if c == 0 {
                continue;
            }
            for &callee in &sa.cfg.calls[b.index()] {
                if done[callee.index()] {
                    continue;
                }
                seed[callee.index()] += c;
                *profile.call_counts.entry((b.0, callee.0)).or_insert(0) += c;
            }
        }
    }
    profile
}

/// One procedure's token propagation: seeds the entry, runs up to
/// [`PASS_LIMIT`] reverse-postorder passes (retreating-edge mass is
/// deferred to the next pass), then drains any residual along forward
/// edges only. Every distribution is exact, so conservation holds.
fn propagate_proc(
    sa: &StaticAnalysis,
    probs: &[Vec<(BlockId, u64)>],
    pid: ProcId,
    seed: u64,
    profile: &mut Profile,
    pending: &mut [u64],
    deferred: &mut [u64],
) {
    let order = &sa.dom.proc_rpo()[pid.index()];
    let entry = order[0];
    pending[entry.index()] = seed;

    let mut shares: Vec<u64> = Vec::new();
    for _pass in 0..PASS_LIMIT {
        let mut any_deferred = false;
        for &b in order {
            let m = pending[b.index()];
            if m == 0 {
                continue;
            }
            pending[b.index()] = 0;
            profile.block_counts[b.index()] += m;
            let pr = &probs[b.index()];
            if pr.is_empty() {
                continue; // Return/Halt: mass leaves the system here.
            }
            distribute(m, pr, &mut shares);
            for (&(s, _), &share) in pr.iter().zip(&shares) {
                if share == 0 {
                    continue;
                }
                *profile.edge_counts.entry((b.0, s.0)).or_insert(0) += share;
                if sa.dom.rpo_index(s) > sa.dom.rpo_index(b) {
                    pending[s.index()] += share;
                } else {
                    deferred[s.index()] += share;
                    any_deferred = true;
                }
            }
        }
        if !any_deferred {
            return;
        }
        for &b in order {
            pending[b.index()] += deferred[b.index()];
            deferred[b.index()] = 0;
        }
    }

    // Drain: forward edges only (a DAG, so one pass empties it). A
    // block whose successors all retreat — an infinite loop — absorbs
    // its residual.
    for &b in order {
        let m = pending[b.index()];
        if m == 0 {
            continue;
        }
        pending[b.index()] = 0;
        profile.block_counts[b.index()] += m;
        let forward: Vec<(BlockId, u64)> = probs[b.index()]
            .iter()
            .copied()
            .filter(|&(s, _)| sa.dom.rpo_index(s) > sa.dom.rpo_index(b))
            .collect();
        let total: u64 = forward.iter().map(|&(_, p)| p).sum();
        if total == 0 {
            continue;
        }
        // Renormalize over the forward arms; `distribute` hands the
        // rounding remainder to the heaviest arm, so the split is exact.
        let rescaled: Vec<(BlockId, u64)> = forward
            .iter()
            .map(|&(s, p)| (s, p * PROB_SCALE / total))
            .collect();
        distribute(m, &rescaled, &mut shares);
        for (&(s, _), &share) in rescaled.iter().zip(&shares) {
            if share > 0 {
                *profile.edge_counts.entry((b.0, s.0)).or_insert(0) += share;
                pending[s.index()] += share;
            }
        }
    }
}

/// Splits `m` tokens across weighted arms exactly: floor shares by
/// weight, with the remainder assigned to the heaviest arm (first on
/// ties). `out` is overwritten; its sum equals `m` when the weights sum
/// to [`PROB_SCALE`].
fn distribute(m: u64, arms: &[(BlockId, u64)], out: &mut Vec<u64>) {
    out.clear();
    let mut assigned: u64 = 0;
    let mut heaviest = 0usize;
    for (i, &(_, p)) in arms.iter().enumerate() {
        let share =
            u64::try_from(u128::from(m) * u128::from(p) / u128::from(PROB_SCALE)).expect("fits");
        out.push(share);
        assigned += share;
        if p > arms[heaviest].1 {
            heaviest = i;
        }
    }
    out[heaviest] += m - assigned;
}

/// Procedure schedule for call-graph propagation: a topological order
/// of the call graph's SCC condensation with callers first; within an
/// SCC, ascending `ProcId`. Computed with an iterative Tarjan walk,
/// fully deterministic.
fn call_schedule(program: &Program, cfg: &SourceCfg) -> Vec<ProcId> {
    let nprocs = program.procs.len();
    // Proc-level call edges, deduplicated, deterministic order.
    let mut callees: Vec<Vec<usize>> = vec![Vec::new(); nprocs];
    for (pi, proc) in program.procs.iter().enumerate() {
        for &b in &proc.blocks {
            for &c in &cfg.calls[b.index()] {
                if !callees[pi].contains(&c.index()) {
                    callees[pi].push(c.index());
                }
            }
        }
    }

    // Iterative Tarjan SCC. Emits SCCs callees-first; we reverse at the
    // end so callers come first, and reverse each SCC's pop order so
    // members end up in discovery (ascending-ProcId-rooted) order.
    let mut index = vec![usize::MAX; nprocs];
    let mut low = vec![0usize; nprocs];
    let mut on_stack = vec![false; nprocs];
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    let mut next_index = 0usize;
    let mut call_stack: Vec<(usize, usize)> = Vec::new();

    for root in 0..nprocs {
        if index[root] != usize::MAX {
            continue;
        }
        call_stack.push((root, 0));
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut ci)) = call_stack.last_mut() {
            if *ci < callees[v].len() {
                let w = callees[v][*ci];
                *ci += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("scc stack nonempty");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc.sort_unstable();
                    sccs.push(scc);
                }
            }
        }
    }

    sccs.reverse();
    sccs.into_iter()
        .flatten()
        .map(|i| ProcId(u32::try_from(i).expect("fits u32")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use codelayout_ir::{Cond, Operand, ProcBuilder, ProgramBuilder, Reg};

    /// main: entry -> loop head h; h body calls leaf; latch l branches
    /// back to h or exits to x.
    fn loop_with_call() -> Program {
        let mut pb = ProgramBuilder::new("sp");
        let main = pb.declare_proc("main");
        let leaf = pb.declare_proc("leaf");
        let mut f = ProcBuilder::new();
        let e = f.entry();
        let h = f.new_block();
        let l = f.new_block();
        let x = f.new_block();
        f.select(e);
        f.jump(h);
        f.select(h);
        f.call(leaf);
        f.jump(l);
        f.select(l);
        f.branch(Cond::Lt, Reg(1), Operand::Imm(100), h, x);
        f.select(x);
        f.halt();
        pb.define_proc(main, f).unwrap();
        let mut g = ProcBuilder::new();
        g.nop();
        g.ret();
        pb.define_proc(leaf, g).unwrap();
        pb.finish(main).unwrap()
    }

    #[test]
    fn loop_amplifies_and_flow_is_exact() {
        let p = loop_with_call();
        let prof = estimate_static_profile(&p);
        let entry = prof.block_counts[0];
        let head = prof.block_counts[1];
        assert_eq!(entry, STATIC_ENTRY_COUNT);
        assert!(
            head > 3 * entry,
            "loop head should be amplified well past one trip: {head} vs {entry}"
        );
        assert_eq!(
            prof.flow_violations(&p, STATIC_ENTRY_COUNT),
            vec![],
            "static flow must conserve exactly"
        );
        // Outgoing mass equals the block count wherever there are succs.
        let cfg = SourceCfg::of(&p);
        for (bi, succs) in cfg.succs.iter().enumerate() {
            if succs.is_empty() {
                continue;
            }
            let out: u64 = succs
                .iter()
                .map(|s| prof.edge_count(BlockId(u32::try_from(bi).unwrap()), *s))
                .sum();
            assert_eq!(out, prof.block_counts[bi], "outflow at block {bi}");
        }
        // The leaf is called once per loop-head execution.
        assert_eq!(prof.call_counts[&(1, 1)], head);
        assert_eq!(prof.block_counts[4], head, "leaf body runs per call");
    }

    #[test]
    fn back_edge_probability_dominates() {
        let p = loop_with_call();
        let sa = StaticAnalysis::of(&p);
        let probs = branch_probabilities(&p, &sa);
        // Latch (block 2): back edge to head combines the loop-branch
        // and loop-exit heuristics.
        let latch = &probs[2];
        assert_eq!(latch.len(), 2);
        let back = latch.iter().find(|(s, _)| *s == BlockId(1)).unwrap().1;
        assert!(back > 900_000, "combined back-edge probability: {back}");
        assert_eq!(latch.iter().map(|(_, p)| p).sum::<u64>(), PROB_SCALE);
        // Unconditional jump is certain.
        assert_eq!(probs[0], vec![(BlockId(1), PROB_SCALE)]);
        // Halt block has no successors.
        assert!(probs[3].is_empty());
    }

    #[test]
    fn estimates_are_deterministic() {
        let p = loop_with_call();
        let a = estimate_static_profile(&p);
        let b = estimate_static_profile(&p);
        assert_eq!(a.block_counts, b.block_counts);
        assert_eq!(a.edge_counts, b.edge_counts);
        assert_eq!(a.call_counts, b.call_counts);
    }

    #[test]
    fn recursion_is_capped_but_exact() {
        // main calls self-recursive rec; rec's counts stay finite and
        // flow stays exact because back-calls are dropped.
        let mut pb = ProgramBuilder::new("rec");
        let main = pb.declare_proc("main");
        let rec = pb.declare_proc("rec");
        let mut f = ProcBuilder::new();
        f.call(rec);
        f.halt();
        pb.define_proc(main, f).unwrap();
        let mut g = ProcBuilder::new();
        let ge = g.entry();
        let again = g.new_block();
        let out = g.new_block();
        g.select(ge);
        g.branch(Cond::Gt, Reg(1), Operand::Imm(0), again, out);
        g.select(again);
        g.call(rec);
        g.ret();
        g.select(out);
        g.ret();
        pb.define_proc(rec, g).unwrap();
        let p = pb.finish(main).unwrap();
        let prof = estimate_static_profile(&p);
        assert!(prof.block_counts[1] > 0, "rec entry got seeded");
        assert_eq!(prof.flow_violations(&p, STATIC_ENTRY_COUNT), vec![]);
        // The self-call from `again` is a dropped back-call.
        assert!(!prof.call_counts.contains_key(&(2, 1)));
    }

    #[test]
    fn jump_table_splits_by_multiplicity() {
        let mut pb = ProgramBuilder::new("jt");
        let main = pb.declare_proc("main");
        let mut f = ProcBuilder::new();
        let e = f.entry();
        let a = f.new_block();
        let b = f.new_block();
        f.select(e);
        // Raw targets: default=a, table=[b, a, a] -> a has 3/4, b 1/4.
        f.jump_table(Reg(1), vec![b, a, a], a);
        f.select(a);
        f.halt();
        f.select(b);
        f.halt();
        pb.define_proc(main, f).unwrap();
        let p = pb.finish(main).unwrap();
        let sa = StaticAnalysis::of(&p);
        let probs = branch_probabilities(&p, &sa);
        let get = |t: u32| probs[0].iter().find(|(s, _)| s.0 == t).unwrap().1;
        assert_eq!(get(1), 750_000);
        assert_eq!(get(2), 250_000);
    }
}
