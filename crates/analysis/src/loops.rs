//! Natural-loop detection over the dominator tree.
//!
//! A *back edge* is a CFG edge `latch -> header` whose target dominates
//! its source; the *natural loop* of a header is the union, over all its
//! back edges, of the blocks that can reach a latch without passing
//! through the header. Loops sharing a header are merged into one.
//! Retreating edges (edges against the reverse postorder) that are not
//! dominance back edges mark *irreducible* regions — cycles with more
//! than one entry, which have no unique header and are excluded from
//! the loop nest.
//!
//! The nest is the backbone of the static frequency estimator
//! ([`crate::staticprof`]) and of the loop-aware layout lints
//! (L007/L008 in [`crate::lint`]).

use crate::cfg::SourceCfg;
use crate::dom::DomTree;
use codelayout_ir::{BlockId, Program};

/// One natural loop: a header, the back-edge sources feeding it, and the
/// set of blocks in the loop body (header included).
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// The loop header (the unique entry of the reducible loop).
    pub header: BlockId,
    /// Sources of the back edges targeting `header`, ascending.
    pub latches: Vec<BlockId>,
    /// All blocks in the loop body, ascending; always contains
    /// `header` and every latch.
    pub blocks: Vec<BlockId>,
    /// Index (into [`LoopForest::loops`]) of the innermost enclosing
    /// loop, when nested.
    pub parent: Option<usize>,
    /// Nesting depth: 1 for outermost loops, 2 for loops inside them…
    pub depth: u32,
}

impl NaturalLoop {
    /// True when `b` belongs to this loop's body (header included).
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.binary_search(&b).is_ok()
    }
}

/// All natural loops of a program, with per-block nesting information.
#[derive(Debug, Clone)]
pub struct LoopForest {
    /// The loops, ordered by ascending header id. Headers are unique:
    /// multiple back edges to one header are merged into a single loop.
    pub loops: Vec<NaturalLoop>,
    /// For each block, the index of the innermost loop containing it.
    pub loop_of: Vec<Option<usize>>,
    /// For each block, its loop-nesting depth (0 = not in any loop).
    pub depth: Vec<u32>,
    /// Dominance back edges `(latch, header)`, ascending.
    pub back_edges: Vec<(BlockId, BlockId)>,
    /// Retreating edges that are *not* dominance back edges — evidence
    /// of irreducible control flow. Empty for reducible programs.
    pub irreducible_edges: Vec<(BlockId, BlockId)>,
}

impl LoopForest {
    /// Detects natural loops for every procedure of `program`.
    pub fn compute(program: &Program, cfg: &SourceCfg, dom: &DomTree) -> LoopForest {
        let n = program.blocks.len();
        let owner = program.owner_of_blocks();

        // Classify edges. Successor lists are deduplicated and in
        // terminator order, so both edge lists come out deterministic.
        let mut back_edges: Vec<(BlockId, BlockId)> = Vec::new();
        let mut irreducible_edges: Vec<(BlockId, BlockId)> = Vec::new();
        for (bi, succs) in cfg.succs.iter().enumerate() {
            let b = BlockId(u32::try_from(bi).expect("fits u32"));
            if !dom.is_reachable(b) {
                continue;
            }
            for &s in succs {
                if owner[s.index()] != owner[bi] {
                    continue;
                }
                if dom.dominates(s, b) {
                    back_edges.push((b, s));
                } else if dom.rpo_index(s) <= dom.rpo_index(b) {
                    irreducible_edges.push((b, s));
                }
            }
        }
        back_edges.sort_unstable();
        irreducible_edges.sort_unstable();

        // Intra-procedural predecessors, for the backwards body walk.
        let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for (bi, succs) in cfg.succs.iter().enumerate() {
            for &s in succs {
                if owner[s.index()] == owner[bi] {
                    preds[s.index()].push(BlockId(u32::try_from(bi).expect("fits u32")));
                }
            }
        }

        // Group back edges by header (already sorted by latch; group
        // keys collected in ascending header order).
        let mut headers: Vec<BlockId> = back_edges.iter().map(|&(_, h)| h).collect();
        headers.sort_unstable();
        headers.dedup();

        let mut loops: Vec<NaturalLoop> = Vec::with_capacity(headers.len());
        for &header in &headers {
            let latches: Vec<BlockId> = back_edges
                .iter()
                .filter(|&&(_, h)| h == header)
                .map(|&(l, _)| l)
                .collect();
            // Classic natural-loop body walk: everything that reaches a
            // latch backwards without crossing the header.
            let mut in_body = vec![false; n];
            in_body[header.index()] = true;
            let mut work: Vec<BlockId> = Vec::new();
            for &l in &latches {
                if !in_body[l.index()] {
                    in_body[l.index()] = true;
                    work.push(l);
                }
            }
            while let Some(b) = work.pop() {
                for &p in &preds[b.index()] {
                    if dom.is_reachable(p) && !in_body[p.index()] {
                        in_body[p.index()] = true;
                        work.push(p);
                    }
                }
            }
            let blocks: Vec<BlockId> = (0..n)
                .filter(|&i| in_body[i])
                .map(|i| BlockId(u32::try_from(i).expect("fits u32")))
                .collect();
            let mut latches = latches;
            latches.sort_unstable();
            loops.push(NaturalLoop {
                header,
                latches,
                blocks,
                parent: None,
                depth: 1,
            });
        }

        // Nesting: loop j encloses loop i when j contains i's header
        // (bodies of distinct headers are then supersets by
        // construction). The parent is the smallest such enclosure.
        for i in 0..loops.len() {
            let mut best: Option<usize> = None;
            for j in 0..loops.len() {
                if i == j || !loops[j].contains(loops[i].header) {
                    continue;
                }
                if best.is_none_or(|b| loops[j].blocks.len() < loops[b].blocks.len()) {
                    best = Some(j);
                }
            }
            loops[i].parent = best;
        }
        // Depths via parent chains (acyclic: parents are strictly larger).
        for i in 0..loops.len() {
            let mut d = 1;
            let mut cur = loops[i].parent;
            while let Some(p) = cur {
                d += 1;
                cur = loops[p].parent;
            }
            loops[i].depth = d;
        }

        // Innermost loop per block: the smallest body containing it.
        let mut loop_of: Vec<Option<usize>> = vec![None; n];
        let mut depth = vec![0u32; n];
        for bi in 0..n {
            let b = BlockId(u32::try_from(bi).expect("fits u32"));
            let mut best: Option<usize> = None;
            for (li, l) in loops.iter().enumerate() {
                if l.contains(b) && best.is_none_or(|c| l.blocks.len() < loops[c].blocks.len()) {
                    best = Some(li);
                }
            }
            loop_of[bi] = best;
            depth[bi] = best.map_or(0, |li| loops[li].depth);
        }

        LoopForest {
            loops,
            loop_of,
            depth,
            back_edges,
            irreducible_edges,
        }
    }

    /// True when `from -> to` is a dominance back edge.
    pub fn is_back_edge(&self, from: BlockId, to: BlockId) -> bool {
        self.back_edges.binary_search(&(from, to)).is_ok()
    }

    /// Loop-nesting depth of `b` (0 when `b` is in no loop).
    pub fn depth_of(&self, b: BlockId) -> u32 {
        self.depth.get(b.index()).copied().unwrap_or(0)
    }

    /// The innermost loop containing `b`, if any.
    pub fn innermost(&self, b: BlockId) -> Option<&NaturalLoop> {
        self.loop_of
            .get(b.index())
            .copied()
            .flatten()
            .map(|i| &self.loops[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codelayout_ir::{Cond, Operand, ProcBuilder, Program, ProgramBuilder, Reg};

    /// Nested loops: outer header `oh` contains inner loop `ih <-> il`,
    /// outer latch `ol` jumps back to `oh`, exit `x`.
    fn nested_program() -> Program {
        let mut pb = ProgramBuilder::new("nest");
        let main = pb.declare_proc("main");
        let mut f = ProcBuilder::new();
        let oh = f.entry();
        let ih = f.new_block();
        let il = f.new_block();
        let ol = f.new_block();
        let x = f.new_block();
        f.select(oh);
        f.jump(ih);
        f.select(ih);
        f.nop();
        f.jump(il);
        f.select(il);
        f.branch(Cond::Lt, Reg(1), Operand::Imm(8), ih, ol);
        f.select(ol);
        f.branch(Cond::Lt, Reg(2), Operand::Imm(4), oh, x);
        f.select(x);
        f.halt();
        pb.define_proc(main, f).unwrap();
        pb.finish(main).unwrap()
    }

    fn forest(p: &Program) -> LoopForest {
        let cfg = SourceCfg::of(p);
        let dom = DomTree::compute(p, &cfg);
        LoopForest::compute(p, &cfg, &dom)
    }

    #[test]
    fn nested_loops_get_correct_depths() {
        let p = nested_program();
        let f = forest(&p);
        let (oh, ih, il, ol, x) = (BlockId(0), BlockId(1), BlockId(2), BlockId(3), BlockId(4));
        assert_eq!(f.loops.len(), 2);
        assert!(f.irreducible_edges.is_empty());
        assert_eq!(f.back_edges, vec![(il, ih), (ol, oh)]);

        let outer = f.loops.iter().find(|l| l.header == oh).unwrap();
        let inner = f.loops.iter().find(|l| l.header == ih).unwrap();
        assert_eq!(outer.depth, 1);
        assert_eq!(inner.depth, 2);
        assert_eq!(outer.blocks, vec![oh, ih, il, ol]);
        assert_eq!(inner.blocks, vec![ih, il]);
        assert_eq!(inner.latches, vec![il]);

        assert_eq!(f.depth_of(oh), 1);
        assert_eq!(f.depth_of(ih), 2);
        assert_eq!(f.depth_of(il), 2);
        assert_eq!(f.depth_of(ol), 1);
        assert_eq!(f.depth_of(x), 0);
        assert_eq!(f.innermost(il).unwrap().header, ih);
        assert!(f.is_back_edge(il, ih));
        assert!(!f.is_back_edge(ih, il));
    }

    #[test]
    fn straight_line_code_has_no_loops() {
        let mut pb = ProgramBuilder::new("line");
        let main = pb.declare_proc("main");
        let mut f = ProcBuilder::new();
        f.nop();
        f.halt();
        pb.define_proc(main, f).unwrap();
        let p = pb.finish(main).unwrap();
        let f = forest(&p);
        assert!(f.loops.is_empty());
        assert!(f.back_edges.is_empty());
        assert!(f.irreducible_edges.is_empty());
        assert_eq!(f.depth_of(BlockId(0)), 0);
    }

    #[test]
    fn irreducible_cycle_is_flagged_not_looped() {
        // e branches into the middle of a cycle a <-> b: two entries,
        // neither dominates the other, so no natural loop exists.
        let mut pb = ProgramBuilder::new("irr");
        let main = pb.declare_proc("main");
        let mut f = ProcBuilder::new();
        let e = f.entry();
        let a = f.new_block();
        let b = f.new_block();
        let x = f.new_block();
        f.select(e);
        f.branch(Cond::Eq, Reg(1), Operand::Imm(0), a, b);
        f.select(a);
        f.jump(b);
        f.select(b);
        f.branch(Cond::Lt, Reg(2), Operand::Imm(2), a, x);
        f.select(x);
        f.halt();
        pb.define_proc(main, f).unwrap();
        let p = pb.finish(main).unwrap();
        let f = forest(&p);
        assert!(
            f.loops.is_empty(),
            "irreducible cycles form no natural loop"
        );
        assert!(f.back_edges.is_empty());
        assert_eq!(f.irreducible_edges.len(), 1, "one retreating edge");
    }
}
