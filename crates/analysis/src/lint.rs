//! Layout-quality lints: stable-coded diagnostics over a linked image.
//!
//! Where [`crate::validate`] answers *"is this layout correct?"*, this
//! module answers *"is this layout any good?"*. Each lint has a stable
//! code (`L001`-style), a severity, and deterministic output, so reports
//! can be snapshotted as golden files and gated in CI. Lint activation is
//! driven by the [`OptimizationSet`] that produced the layout: a missed
//! fall-through is only a finding when chaining claimed to fix it.
//!
//! | Code | Severity | Meaning |
//! |------|----------|---------|
//! | L000 | deny | translation validation failed (semantic divergence) |
//! | L001 | warn | hottest outgoing edge is not a fall-through under chaining |
//! | L002 | warn | never-executed block glued inside a hot segment under splitting |
//! | L003 | warn | cold segment placed before a hot one of the same procedure |
//! | L004 | info | hot block straddles a cache line it could fit inside |
//! | L005 | info | unreachable code is placed in the image |
//! | L006 | warn | block's hottest predecessor is off-chain under chaining |
//! | L007 | warn | hot loop body split across cache lines/pages it could fit inside |
//! | L008 | warn | loop back edge laid out as taken although a fall-through was available |
//!
//! L007 and L008 are *loop-aware*: they run the static analysis stack
//! ([`crate::DomTree`], [`crate::LoopForest`],
//! [`crate::estimate_static_profile`]) and judge the layout against the
//! estimated loop frequencies, so they work identically with or without
//! a measured profile.

use crate::cfg::SourceCfg;
use crate::staticprof::{estimate_static_profile_with, StaticAnalysis, STATIC_ENTRY_COUNT};
use crate::validate::validate_translation;
use codelayout_core::{LayoutPipeline, OptimizationSet};
use codelayout_ir::{BlockId, Image, Layout, ProcId, Program, INSTR_BYTES};
use codelayout_profile::Profile;
use std::fmt;

/// Diagnostic severity, ordered from least to most severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: worth a look, never gates anything.
    Info,
    /// Likely layout-quality regression.
    Warn,
    /// Correctness violation: fails the build.
    Deny,
}

impl Severity {
    /// Stable lowercase name used in both renderers.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable lint code (`"L001"`).
    pub code: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Block the finding is anchored to, when block-granular.
    pub block: Option<BlockId>,
    /// Procedure the finding is anchored to.
    pub proc: Option<ProcId>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        match (self.block, self.proc) {
            (Some(b), Some(p)) => write!(f, " {b} in {p}")?,
            (Some(b), None) => write!(f, " {b}")?,
            (None, Some(p)) => write!(f, " {p}")?,
            (None, None) => {}
        }
        write!(f, ": {}", self.message)
    }
}

/// Lint configuration.
#[derive(Debug, Clone, Copy)]
pub struct LintConfig {
    /// The optimization set that produced the layout; gates which lints
    /// are active (for example fall-through lints only fire when chaining
    /// claimed to arrange fall-throughs).
    pub set: OptimizationSet,
    /// Cache line size in bytes for alignment lints.
    pub line_bytes: u64,
    /// Page size in bytes for the loop-splitting lint (L007).
    pub page_bytes: u64,
    /// Per-code cap on emitted diagnostics; the overflow is summarized in
    /// [`LintReport::truncated`] so reports stay readable on big images.
    pub max_per_code: usize,
}

impl LintConfig {
    /// Default configuration for a given optimization set (128-byte lines,
    /// 4096-byte pages, at most 20 diagnostics per code).
    pub fn new(set: OptimizationSet) -> Self {
        LintConfig {
            set,
            line_bytes: 128,
            page_bytes: 4096,
            max_per_code: 20,
        }
    }
}

/// A complete lint run: findings plus per-code overflow counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    /// Findings in deterministic order (by code, then layout position).
    pub diagnostics: Vec<Diagnostic>,
    /// `(code, dropped)` for codes that exceeded the per-code cap.
    pub truncated: Vec<(&'static str, usize)>,
}

impl LintReport {
    /// Number of findings at a given severity.
    pub fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }

    /// True when any finding is deny-level.
    pub fn has_deny(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Deny)
    }

    /// Renders the report as human-readable text, one finding per line,
    /// ending with a summary line.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        for (code, dropped) in &self.truncated {
            let _ = writeln!(out, "note[{code}]: {dropped} more finding(s) suppressed");
        }
        let _ = writeln!(
            out,
            "{} deny, {} warn, {} info",
            self.count(Severity::Deny),
            self.count(Severity::Warn),
            self.count(Severity::Info)
        );
        out
    }

    /// Renders the report as a JSON value with a stable shape:
    /// `{"diagnostics": [...], "truncated": [...], "summary": {...}}`.
    pub fn to_json(&self) -> serde_json::Value {
        let diags: Vec<serde_json::Value> = self
            .diagnostics
            .iter()
            .map(|d| {
                serde_json::json!({
                    "code": d.code,
                    "severity": d.severity.as_str(),
                    "block": d.block.map(|b| b.0),
                    "proc": d.proc.map(|p| p.0),
                    "message": d.message.clone(),
                })
            })
            .collect();
        let truncated: Vec<serde_json::Value> = self
            .truncated
            .iter()
            .map(|(code, dropped)| serde_json::json!({ "code": code, "dropped": dropped }))
            .collect();
        serde_json::json!({
            "diagnostics": diags,
            "truncated": truncated,
            "summary": {
                "deny": self.count(Severity::Deny),
                "warn": self.count(Severity::Warn),
                "info": self.count(Severity::Info),
            },
        })
    }
}

/// Accumulates findings for one code, enforcing the per-code cap.
struct CodeBucket {
    code: &'static str,
    kept: Vec<Diagnostic>,
    dropped: usize,
    cap: usize,
}

impl CodeBucket {
    fn new(code: &'static str, cap: usize) -> Self {
        CodeBucket {
            code,
            kept: Vec::new(),
            dropped: 0,
            cap,
        }
    }

    fn push(
        &mut self,
        severity: Severity,
        block: Option<BlockId>,
        proc: Option<ProcId>,
        message: String,
    ) {
        if self.kept.len() < self.cap {
            self.kept.push(Diagnostic {
                code: self.code,
                severity,
                block,
                proc,
                message,
            });
        } else {
            self.dropped += 1;
        }
    }

    fn drain_into(self, report: &mut LintReport) {
        report.diagnostics.extend(self.kept);
        if self.dropped > 0 {
            report.truncated.push((self.code, self.dropped));
        }
    }
}

/// Validates and lints a layout in one call: translation validation first
/// (a failure becomes a single deny-level `L000` finding and suppresses
/// the quality lints, whose premises no longer hold), then the full lint
/// battery.
pub fn analyze_layout(
    program: &Program,
    profile: &Profile,
    layout: &Layout,
    image: &Image,
    config: &LintConfig,
) -> LintReport {
    if let Err(e) = validate_translation(program, layout, image) {
        let mut report = LintReport::default();
        report.diagnostics.push(Diagnostic {
            code: "L000",
            severity: Severity::Deny,
            block: None,
            proc: None,
            message: format!("translation validation failed under `{}`: {e}", config.set),
        });
        return report;
    }
    lint_layout(program, profile, layout, image, config)
}

/// Runs the quality lints (no translation validation) over a layout that
/// is assumed valid. Output order is deterministic: codes ascending, and
/// within a code, layout order.
pub fn lint_layout(
    program: &Program,
    profile: &Profile,
    layout: &Layout,
    image: &Image,
    config: &LintConfig,
) -> LintReport {
    let n = program.blocks.len();
    let owner = program.owner_of_blocks();
    let mut pos = vec![usize::MAX; n];
    for (i, &b) in layout.order.iter().enumerate() {
        pos[b.index()] = i;
    }

    let mut report = LintReport::default();
    lint_fallthroughs(program, profile, layout, &owner, &pos, config, &mut report);
    lint_segments(program, profile, &pos, config, &mut report);
    lint_alignment(profile, layout, image, config, &mut report);
    lint_unreachable(program, layout, image, config, &mut report);
    lint_loops(program, layout, image, &pos, config, &mut report);
    report
}

/// L001 + L006: profile/layout disagreement around fall-throughs, active
/// only when chaining is enabled (without chaining the layout never
/// claimed to arrange them).
fn lint_fallthroughs(
    program: &Program,
    profile: &Profile,
    layout: &Layout,
    owner: &[ProcId],
    pos: &[usize],
    config: &LintConfig,
    report: &mut LintReport,
) {
    if !config.set.chain {
        return;
    }
    let n = program.blocks.len();

    // Hottest intra-procedure flow edge out of and into every block,
    // derived from terminator successors (not by iterating the profile
    // map) so the scan order — and therefore tie-breaks — is
    // deterministic.
    let mut best_out: Vec<Option<(BlockId, u64)>> = vec![None; n];
    let mut best_in: Vec<Option<(BlockId, u64)>> = vec![None; n];
    for (bi, blk) in program.blocks.iter().enumerate() {
        let b = BlockId(u32::try_from(bi).expect("block count fits u32"));
        for t in blk.term.successors() {
            if t == b || owner[t.index()] != owner[bi] {
                continue;
            }
            let w = profile.edge_count(b, t);
            if w == 0 {
                continue;
            }
            if best_out[bi].is_none_or(|(_, bw)| w > bw) {
                best_out[bi] = Some((t, w));
            }
            if best_in[t.index()].is_none_or(|(_, bw)| w > bw) {
                best_in[t.index()] = Some((b, w));
            }
        }
    }

    // Flow weight each block actually realizes across its layout seams:
    // the edge into whatever follows it, and the edge from whatever
    // precedes it (0 across procedure boundaries). An off-chain hot edge
    // is only a *finding* when it is strictly heavier than both realized
    // placements it lost to — otherwise the greedy chainer made the right
    // trade and the report would drown in inherent conflicts.
    let realized_out = |bi: usize| -> u64 {
        layout
            .order
            .get(pos[bi] + 1)
            .filter(|nb| owner[nb.index()] == owner[bi])
            .map_or(0, |&nb| {
                profile.edge_count(BlockId(u32::try_from(bi).expect("verified")), nb)
            })
    };
    let realized_in = |bi: usize| -> u64 {
        pos[bi]
            .checked_sub(1)
            .map(|i| layout.order[i])
            .filter(|lp| owner[lp.index()] == owner[bi])
            .map_or(0, |lp| {
                profile.edge_count(lp, BlockId(u32::try_from(bi).expect("verified")))
            })
    };

    let mut l001 = CodeBucket::new("L001", config.max_per_code);
    let mut l006 = CodeBucket::new("L006", config.max_per_code);
    for &b in &layout.order {
        let bi = b.index();
        if let Some((t, w)) = best_out[bi] {
            if pos[t.index()] != pos[bi] + 1 && realized_out(bi) < w && realized_in(t.index()) < w {
                l001.push(
                    Severity::Warn,
                    Some(b),
                    Some(owner[bi]),
                    format!(
                        "hottest outgoing edge {b}->{t} (count {w}) is not a fall-through \
                         even though chaining is enabled, and both blocks sit on lighter seams"
                    ),
                );
            }
        }
        if let Some((p, w)) = best_in[bi] {
            let off_chain = pos[bi].checked_sub(1).is_none_or(|i| layout.order[i] != p);
            if off_chain && realized_in(bi) < w && realized_out(p.index()) < w {
                l006.push(
                    Severity::Warn,
                    Some(b),
                    Some(owner[bi]),
                    format!(
                        "hottest predecessor {p} (count {w}) is off-chain although {b} is \
                         reached only {} time(s) from the block placed before it",
                        realized_in(bi)
                    ),
                );
            }
        }
    }
    l001.drain_into(report);
    l006.drain_into(report);
}

/// L002 + L003: segment composition and ordering, active only under
/// fine-grain splitting.
fn lint_segments(
    program: &Program,
    profile: &Profile,
    pos: &[usize],
    config: &LintConfig,
    report: &mut LintReport,
) {
    if !config.set.split {
        return;
    }
    // Recompute the same segments the pipeline placed; the layout is their
    // concatenation in some order, so each segment's position is its
    // head's position.
    let segs = LayoutPipeline::new(program, profile).segments(config.set.chain);

    let mut l002 = CodeBucket::new("L002", config.max_per_code);
    for s in &segs {
        if s.is_cold() || s.blocks.len() < 2 {
            continue;
        }
        for &b in &s.blocks {
            if profile.block_count(b) == 0 {
                l002.push(
                    Severity::Warn,
                    Some(b),
                    Some(s.proc),
                    format!(
                        "never-executed block {b} is glued inside a hot segment \
                         (weight {}) headed by {}",
                        s.weight,
                        s.head()
                    ),
                );
            }
        }
    }
    l002.drain_into(report);

    // L003 only means something once an ordering pass had the freedom to
    // sink cold segments.
    if !config.set.porder {
        return;
    }
    let mut l003 = CodeBucket::new("L003", config.max_per_code);
    let nprocs = program.procs.len();
    // Per procedure: latest-placed hot segment vs earliest-placed cold one.
    let mut first_cold: Vec<Option<usize>> = vec![None; nprocs];
    let mut last_hot: Vec<Option<usize>> = vec![None; nprocs];
    for s in &segs {
        let p = s.proc.index();
        let at = pos[s.head().index()];
        if s.is_cold() {
            if first_cold[p].is_none_or(|c| at < c) {
                first_cold[p] = Some(at);
            }
        } else if last_hot[p].is_none_or(|h| at > h) {
            last_hot[p] = Some(at);
        }
    }
    for p in 0..nprocs {
        if let (Some(c), Some(h)) = (first_cold[p], last_hot[p]) {
            if c < h {
                l003.push(
                    Severity::Warn,
                    None,
                    Some(ProcId(u32::try_from(p).expect("proc count fits u32"))),
                    format!(
                        "a cold segment (layout position {c}) is placed before a hot \
                         segment (position {h}) of the same procedure"
                    ),
                );
            }
        }
    }
    l003.drain_into(report);
}

/// L004: hot block straddles a cache-line boundary although it would fit
/// entirely inside one line if aligned.
fn lint_alignment(
    profile: &Profile,
    layout: &Layout,
    image: &Image,
    config: &LintConfig,
    report: &mut LintReport,
) {
    let line = config.line_bytes;
    if line == 0 {
        return;
    }
    let mut l004 = CodeBucket::new("L004", config.max_per_code);
    for (i, &b) in layout.order.iter().enumerate() {
        if profile.block_count(b) == 0 {
            continue;
        }
        let start = image.block_start[b.index()];
        let end = match layout.order.get(i + 1) {
            Some(&nb) => u64::from(image.block_start[nb.index()]),
            None => image.code.len() as u64,
        };
        let bytes = (end - u64::from(start)) * INSTR_BYTES;
        let first = image.addr(start);
        let last = first + bytes - 1;
        if bytes <= line && first / line != last / line {
            l004.push(
                Severity::Info,
                Some(b),
                Some(image.owner[b.index()]),
                format!(
                    "hot block {b} ({bytes} bytes at {first:#x}) straddles a \
                     {line}-byte line boundary it could fit inside"
                ),
            );
        }
    }
    l004.drain_into(report);
}

/// L005: code that can never execute still occupies image space. Fully
/// dead procedures are reported once; stray dead blocks inside live
/// procedures are reported individually.
fn lint_unreachable(
    program: &Program,
    layout: &Layout,
    image: &Image,
    config: &LintConfig,
    report: &mut LintReport,
) {
    let cfg = SourceCfg::of(program);
    let mut l005 = CodeBucket::new("L005", config.max_per_code);
    let mut dead_proc = vec![false; program.procs.len()];
    for (pi, proc) in program.procs.iter().enumerate() {
        if proc.blocks.iter().all(|b| !cfg.reachable[b.index()]) {
            dead_proc[pi] = true;
            let instrs: usize = proc
                .blocks
                .iter()
                .map(|&b| region_len(layout, image, b))
                .sum();
            l005.push(
                Severity::Info,
                None,
                Some(ProcId(u32::try_from(pi).expect("proc count fits u32"))),
                format!(
                    "procedure `{}` is unreachable but occupies {instrs} placed instruction(s)",
                    proc.name
                ),
            );
        }
    }
    for &b in &layout.order {
        if cfg.reachable[b.index()] || dead_proc[image.owner[b.index()].index()] {
            continue;
        }
        l005.push(
            Severity::Info,
            Some(b),
            Some(image.owner[b.index()]),
            format!("block {b} is unreachable but placed"),
        );
    }
    l005.drain_into(report);
}

/// L007 + L008: loop-aware placement lints, judged against the *static*
/// frequency estimate so they fire identically with or without a
/// measured profile.
///
/// * L007 (any set): a statically hot natural loop whose placed body
///   would fit inside one cache line (or one page) straddles a boundary
///   anyway.
/// * L008 (chaining only): a loop back edge is laid out as a taken
///   branch although the latch could fall through to the header and
///   both displaced seams carry less estimated weight — the classic
///   missed loop rotation.
fn lint_loops(
    program: &Program,
    layout: &Layout,
    image: &Image,
    pos: &[usize],
    config: &LintConfig,
    report: &mut LintReport,
) {
    let sa = StaticAnalysis::of(program);
    if sa.loops.loops.is_empty() {
        return;
    }
    let sprof = estimate_static_profile_with(program, &sa);

    // Placed byte extents per block (0 bytes when the linker erased the
    // whole region, e.g. an empty block whose jump became fall-through).
    let region_bytes = |b: BlockId| -> u64 {
        let start = u64::from(image.block_start[b.index()]);
        let end = match layout.order.get(pos[b.index()] + 1) {
            Some(&nb) => u64::from(image.block_start[nb.index()]),
            None => image.code.len() as u64,
        };
        (end - start) * INSTR_BYTES
    };

    // L007 — iterate headers in layout order so findings come out in
    // layout order within the code.
    let mut l007 = CodeBucket::new("L007", config.max_per_code);
    for &b in &layout.order {
        let Some(l) = sa.loops.loops.iter().find(|l| l.header == b) else {
            continue;
        };
        let freq = sprof.block_count(l.header);
        if freq < STATIC_ENTRY_COUNT {
            continue; // not estimated hot
        }
        let mut body_bytes = 0u64;
        let mut first = u64::MAX;
        let mut last = 0u64;
        for &m in &l.blocks {
            let bytes = region_bytes(m);
            if bytes == 0 {
                continue;
            }
            let lo = image.addr(image.block_start[m.index()]);
            body_bytes += bytes;
            first = first.min(lo);
            last = last.max(lo + bytes - 1);
        }
        if body_bytes == 0 {
            continue;
        }
        for granule in [config.line_bytes, config.page_bytes] {
            if granule > 0 && body_bytes <= granule && first / granule != last / granule {
                l007.push(
                    Severity::Warn,
                    Some(l.header),
                    Some(image.owner[l.header.index()]),
                    format!(
                        "hot loop at {} (estimated frequency {freq}, {body_bytes} placed \
                         bytes) is split across a {granule}-byte boundary it could fit inside",
                        l.header
                    ),
                );
            }
        }
    }
    l007.drain_into(report);

    // L008 — only meaningful when chaining claimed to arrange
    // fall-throughs. Uses the same both-seams-lighter guard as L001,
    // with static edge weights.
    if !config.set.chain {
        return;
    }
    let static_seam_out = |bi: usize| -> u64 {
        layout
            .order
            .get(pos[bi] + 1)
            .map_or(0, |&nb| sprof.edge_count(layout.order[pos[bi]], nb))
    };
    let static_seam_in = |bi: usize| -> u64 {
        pos[bi].checked_sub(1).map_or(0, |i| {
            sprof.edge_count(layout.order[i], layout.order[pos[bi]])
        })
    };
    let mut l008 = CodeBucket::new("L008", config.max_per_code);
    for &b in &layout.order {
        let term = &program.blocks[b.index()].term;
        // Jump tables cannot fall through; returns have no back edges.
        if !matches!(
            term,
            codelayout_ir::Terminator::Jump(_) | codelayout_ir::Terminator::Branch { .. }
        ) {
            continue;
        }
        for &h in &sa.cfg.succs[b.index()] {
            if !sa.loops.is_back_edge(b, h) || pos[h.index()] == pos[b.index()] + 1 {
                continue;
            }
            let w = sprof.edge_count(b, h);
            if w == 0 || static_seam_out(b.index()) >= w || static_seam_in(h.index()) >= w {
                continue;
            }
            l008.push(
                Severity::Warn,
                Some(b),
                Some(image.owner[b.index()]),
                format!(
                    "loop back edge {b}->{h} (estimated count {w}) is laid out as a taken \
                     branch although a fall-through was available on lighter seams"
                ),
            );
        }
    }
    l008.drain_into(report);
}

/// Number of image instructions in a block's region.
fn region_len(layout: &Layout, image: &Image, b: BlockId) -> usize {
    let start = image.block_start[b.index()] as usize;
    let at = layout
        .order
        .iter()
        .position(|&x| x == b)
        .expect("block present in layout");
    match layout.order.get(at + 1) {
        Some(&nb) => image.block_start[nb.index()] as usize - start,
        None => image.code.len() - start,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codelayout_ir::link::link;
    use codelayout_ir::{Cond, LInstr, Operand, ProcBuilder, ProgramBuilder, Reg};

    /// Same shape as the validator's fixture: main (b0) calls a and z;
    /// a = entry b1 branching to hot b2 / cold b3, joining at b4; z = b5.
    fn program() -> Program {
        let mut pb = ProgramBuilder::new("lint");
        let main = pb.declare_proc("main");
        let pa = pb.declare_proc("a");
        let z = pb.declare_proc("z_cold");

        let mut f = ProcBuilder::new();
        f.call(pa).call(z);
        f.halt();
        pb.define_proc(main, f).unwrap();

        let mut g = ProcBuilder::new();
        let e = g.entry();
        let hot = g.new_block();
        let cold = g.new_block();
        let out = g.new_block();
        g.select(e);
        g.branch(Cond::Eq, Reg(1), Operand::Imm(0), hot, cold);
        g.select(hot);
        g.nop();
        g.jump(out);
        g.select(cold);
        g.nop();
        g.jump(out);
        g.select(out);
        g.ret();
        pb.define_proc(pa, g).unwrap();

        let mut h = ProcBuilder::new();
        h.nop();
        h.ret();
        pb.define_proc(z, h).unwrap();

        pb.finish(main).unwrap()
    }

    fn profile(p: &Program) -> Profile {
        let mut prof = Profile::new(p.blocks.len());
        prof.block_counts = vec![1000, 1000, 990, 10, 1000, 0];
        prof.edge_counts.insert((1, 2), 990);
        prof.edge_counts.insert((1, 3), 10);
        prof.edge_counts.insert((2, 4), 990);
        prof.edge_counts.insert((3, 4), 10);
        prof.call_counts.insert((0, 1), 1000);
        prof
    }

    fn codes(report: &LintReport) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn chained_pipeline_layout_is_clean_of_fallthrough_lints() {
        let p = program();
        let prof = profile(&p);
        let set = OptimizationSet::CHAIN;
        let layout = LayoutPipeline::new(&p, &prof).build(set);
        let image = link(&p, &layout, 0x1000).unwrap();
        let report = analyze_layout(&p, &prof, &layout, &image, &LintConfig::new(set));
        assert!(!report.has_deny());
        assert!(
            !codes(&report).contains(&"L001"),
            "chaining satisfied every hottest edge here: {report:?}"
        );
    }

    #[test]
    fn corrupted_image_becomes_a_single_l000_deny() {
        let p = program();
        let prof = profile(&p);
        let set = OptimizationSet::CHAIN;
        let layout = LayoutPipeline::new(&p, &prof).build(set);
        let mut image = link(&p, &layout, 0x1000).unwrap();
        let at = image.block_start[1] as usize;
        match &mut image.code[at] {
            LInstr::BrCond { target, .. } => *target = image.block_start[2],
            other => panic!("expected BrCond, got {other:?}"),
        }
        let report = analyze_layout(&p, &prof, &layout, &image, &LintConfig::new(set));
        assert!(report.has_deny());
        assert_eq!(codes(&report), vec!["L000"]);
        assert_eq!(report.count(Severity::Deny), 1);
        let text = report.render_text();
        assert!(text.contains("deny[L000]"), "{text}");
        assert!(text.contains("translation validation failed"), "{text}");
        assert!(
            text.contains("`chain`"),
            "names the optimization set: {text}"
        );
    }

    #[test]
    fn natural_layout_under_chaining_claim_fires_l001_and_l006() {
        let p = program();
        let prof = profile(&p);
        // The natural layout [0,1,2,3,4,5] leaves the hot edge b2->b4
        // non-adjacent (b3 sits between), so linting it *as if* chained
        // must flag both sides of that edge.
        let layout = Layout::natural(&p);
        let image = link(&p, &layout, 0x1000).unwrap();
        let config = LintConfig::new(OptimizationSet::CHAIN);
        let report = lint_layout(&p, &prof, &layout, &image, &config);
        let l001: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "L001")
            .collect();
        assert_eq!(l001.len(), 1, "{report:?}");
        assert_eq!(l001[0].block, Some(BlockId(2)));
        assert_eq!(l001[0].severity, Severity::Warn);
        assert!(l001[0].message.contains("b2->b4"), "{}", l001[0].message);
        let l006: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "L006")
            .collect();
        assert_eq!(l006.len(), 1, "{report:?}");
        assert_eq!(l006[0].block, Some(BlockId(4)));

        // Without the chaining claim, neither lint is active.
        let base = lint_layout(
            &p,
            &prof,
            &layout,
            &image,
            &LintConfig::new(OptimizationSet::BASE),
        );
        assert!(!codes(&base).contains(&"L001"));
        assert!(!codes(&base).contains(&"L006"));
    }

    #[test]
    fn cold_block_glued_into_hot_segment_fires_l002() {
        // Entry branches to two never-executed blocks; chaining glues one
        // of them (via a zero-weight edge) onto the hot entry, and the
        // conditional terminator prevents splitting from cutting it out.
        let mut pb = ProgramBuilder::new("l002");
        let main = pb.declare_proc("main");
        let mut f = ProcBuilder::new();
        let e = f.entry();
        let a = f.new_block();
        let b = f.new_block();
        f.select(e);
        f.branch(Cond::Eq, Reg(1), Operand::Imm(0), a, b);
        f.select(a);
        f.halt();
        f.select(b);
        f.halt();
        pb.define_proc(main, f).unwrap();
        let p = pb.finish(main).unwrap();
        let mut prof = Profile::new(3);
        prof.block_counts = vec![100, 0, 0];

        let set = OptimizationSet::CHAIN_SPLIT;
        let layout = LayoutPipeline::new(&p, &prof).build(set);
        let image = link(&p, &layout, 0).unwrap();
        let report = lint_layout(&p, &prof, &layout, &image, &LintConfig::new(set));
        let l002: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "L002")
            .collect();
        assert_eq!(l002.len(), 1, "{report:?}");
        assert_eq!(l002[0].block, Some(BlockId(1)));
    }

    #[test]
    fn cold_segment_ahead_of_hot_one_fires_l003() {
        let p = program();
        let mut prof = profile(&p);
        // Make the cold arm truly cold: never executed and never entered,
        // so proc a splits into a hot entry segment and a cold [b3].
        prof.block_counts[3] = 0;
        prof.edge_counts.insert((1, 3), 0);
        prof.edge_counts.insert((3, 4), 0);
        let set = OptimizationSet::ALL;
        // Hand-build a layout that fronts a's cold segment (b3) before its
        // hot segments; segments are recomputed from program + profile, so
        // only the placement is unusual.
        let layout = Layout {
            order: vec![
                BlockId(3),
                BlockId(0),
                BlockId(1),
                BlockId(2),
                BlockId(4),
                BlockId(5),
            ],
        };
        let image = link(&p, &layout, 0).unwrap();
        let report = lint_layout(&p, &prof, &layout, &image, &LintConfig::new(set));
        let l003: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "L003")
            .collect();
        assert_eq!(l003.len(), 1, "{report:?}");
        assert_eq!(l003[0].proc, Some(ProcId(1)));

        // The pipeline's own `all` layout sinks cold segments; no L003.
        let good = LayoutPipeline::new(&p, &prof).build(set);
        let good_image = link(&p, &good, 0).unwrap();
        let good_report = lint_layout(&p, &prof, &good, &good_image, &LintConfig::new(set));
        assert!(!codes(&good_report).contains(&"L003"), "{good_report:?}");
    }

    #[test]
    fn hot_block_straddling_a_line_fires_l004() {
        // b0 (1 instr after the fall-through erases its jump) then b1
        // (nop + halt, 8 bytes) starting at instruction 1: with 8-byte
        // lines, b1 spans bytes 4..=11 — two lines — yet would fit in one.
        let mut pb = ProgramBuilder::new("l004");
        let main = pb.declare_proc("main");
        let mut f = ProcBuilder::new();
        let e = f.entry();
        let b1 = f.new_block();
        f.select(e);
        f.nop();
        f.jump(b1);
        f.select(b1);
        f.nop();
        f.halt();
        pb.define_proc(main, f).unwrap();
        let p = pb.finish(main).unwrap();
        let mut prof = Profile::new(2);
        prof.block_counts = vec![10, 10];
        prof.edge_counts.insert((0, 1), 10);

        let layout = Layout::natural(&p);
        let image = link(&p, &layout, 0).unwrap();
        assert_eq!(image.code.len(), 3, "jump erased by fall-through");
        let mut config = LintConfig::new(OptimizationSet::BASE);
        config.line_bytes = 8;
        let report = lint_layout(&p, &prof, &layout, &image, &config);
        let l004: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "L004")
            .collect();
        assert_eq!(l004.len(), 1, "{report:?}");
        assert_eq!(l004[0].block, Some(BlockId(1)));
        assert_eq!(l004[0].severity, Severity::Info);
    }

    #[test]
    fn unreachable_code_fires_l005_grouped_by_procedure() {
        // main: b0 halts, b1 is orphaned; `dead` proc is never called.
        let mut pb = ProgramBuilder::new("l005");
        let main = pb.declare_proc("main");
        let dead = pb.declare_proc("dead");
        let mut f = ProcBuilder::new();
        let e = f.entry();
        let orphan = f.new_block();
        f.select(e);
        f.halt();
        f.select(orphan);
        f.halt();
        pb.define_proc(main, f).unwrap();
        let mut g = ProcBuilder::new();
        g.nop();
        g.ret();
        pb.define_proc(dead, g).unwrap();
        let p = pb.finish(main).unwrap();
        let prof = Profile::new(p.blocks.len());

        let layout = Layout::natural(&p);
        let image = link(&p, &layout, 0).unwrap();
        let report = lint_layout(
            &p,
            &prof,
            &layout,
            &image,
            &LintConfig::new(OptimizationSet::BASE),
        );
        let l005: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "L005")
            .collect();
        // One grouped finding for `dead`, one block-level for the orphan.
        assert_eq!(l005.len(), 2, "{report:?}");
        assert!(l005
            .iter()
            .any(|d| d.proc == Some(ProcId(1)) && d.block.is_none()));
        assert!(l005.iter().any(|d| d.block == Some(BlockId(1))));
    }

    /// Loop fixture for the loop-aware lints: e -> h; h -> l; latch l
    /// branches back to h or exits to x.
    fn loop_program() -> Program {
        let mut pb = ProgramBuilder::new("loops");
        let main = pb.declare_proc("main");
        let mut f = ProcBuilder::new();
        let e = f.entry();
        let h = f.new_block();
        let l = f.new_block();
        let x = f.new_block();
        f.select(e);
        f.jump(h);
        f.select(h);
        f.nop();
        f.jump(l);
        f.select(l);
        f.branch(Cond::Lt, Reg(1), Operand::Imm(100), h, x);
        f.select(x);
        f.halt();
        pb.define_proc(main, f).unwrap();
        pb.finish(main).unwrap()
    }

    #[test]
    fn split_hot_loop_fires_l007() {
        // Self-loop h occupies 8 bytes starting at byte 4: with 8-byte
        // "lines" it spans two although it would fit in one.
        let mut pb = ProgramBuilder::new("l007");
        let main = pb.declare_proc("main");
        let mut f = ProcBuilder::new();
        let e = f.entry();
        let h = f.new_block();
        let x = f.new_block();
        f.select(e);
        f.nop();
        f.jump(h);
        f.select(h);
        f.nop();
        f.branch(Cond::Lt, Reg(1), Operand::Imm(100), h, x);
        f.select(x);
        f.halt();
        pb.define_proc(main, f).unwrap();
        let p = pb.finish(main).unwrap();
        let prof = Profile::new(p.blocks.len());

        let layout = Layout::natural(&p);
        let image = link(&p, &layout, 0).unwrap();
        let mut config = LintConfig::new(OptimizationSet::BASE);
        config.line_bytes = 8;
        let report = lint_layout(&p, &prof, &layout, &image, &config);
        let l007: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "L007")
            .collect();
        assert_eq!(l007.len(), 1, "{report:?}");
        assert_eq!(l007[0].block, Some(BlockId(1)), "anchored at the header");
        assert_eq!(l007[0].severity, Severity::Warn);
        assert!(
            l007[0].message.contains("8-byte boundary"),
            "{}",
            l007[0].message
        );

        // Aligned at base 0 the same loop fits its line: no finding.
        let aligned = Layout {
            order: vec![BlockId(1), BlockId(0), BlockId(2)],
        };
        let aligned_image = link(&p, &aligned, 0).unwrap();
        let clean = lint_layout(&p, &prof, &aligned, &aligned_image, &config);
        assert!(!codes(&clean).contains(&"L007"), "{clean:?}");
    }

    #[test]
    fn unrotated_back_edge_fires_l008_under_chaining_only() {
        let p = loop_program();
        let prof = Profile::new(p.blocks.len());
        // Natural layout [e, h, l, x]: the back edge l->h is a taken
        // branch, and both seams (l->x, e->h) carry less estimated
        // weight than the back edge.
        let layout = Layout::natural(&p);
        let image = link(&p, &layout, 0).unwrap();
        let report = lint_layout(
            &p,
            &prof,
            &layout,
            &image,
            &LintConfig::new(OptimizationSet::CHAIN),
        );
        let l008: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "L008")
            .collect();
        assert_eq!(l008.len(), 1, "{report:?}");
        assert_eq!(l008[0].block, Some(BlockId(2)), "anchored at the latch");
        assert_eq!(l008[0].severity, Severity::Warn);

        // Rotated layout [e, l, h, x] realizes the back edge as a
        // fall-through: clean.
        let rotated = Layout {
            order: vec![BlockId(0), BlockId(2), BlockId(1), BlockId(3)],
        };
        let rotated_image = link(&p, &rotated, 0).unwrap();
        let clean = lint_layout(
            &p,
            &prof,
            &rotated,
            &rotated_image,
            &LintConfig::new(OptimizationSet::CHAIN),
        );
        assert!(!codes(&clean).contains(&"L008"), "{clean:?}");

        // Without the chaining claim the lint is inactive.
        let base = lint_layout(
            &p,
            &prof,
            &layout,
            &image,
            &LintConfig::new(OptimizationSet::BASE),
        );
        assert!(!codes(&base).contains(&"L008"));
    }

    #[test]
    fn per_code_cap_truncates_and_reports_overflow() {
        let p = program();
        let prof = profile(&p);
        let layout = Layout::natural(&p);
        let image = link(&p, &layout, 0x1000).unwrap();
        let mut config = LintConfig::new(OptimizationSet::CHAIN);
        config.max_per_code = 0;
        let report = lint_layout(&p, &prof, &layout, &image, &config);
        assert!(report.diagnostics.is_empty());
        assert!(
            report.truncated.iter().any(|&(c, n)| c == "L001" && n == 1),
            "{report:?}"
        );
        let text = report.render_text();
        assert!(text.contains("suppressed"), "{text}");
    }

    #[test]
    fn json_report_has_stable_shape() {
        let p = program();
        let prof = profile(&p);
        let layout = Layout::natural(&p);
        let image = link(&p, &layout, 0x1000).unwrap();
        let report = lint_layout(
            &p,
            &prof,
            &layout,
            &image,
            &LintConfig::new(OptimizationSet::CHAIN),
        );
        let v = report.to_json();
        let diags = v.get("diagnostics").as_array().unwrap();
        assert_eq!(diags.len(), report.diagnostics.len());
        for d in diags {
            assert!(d.get("code").as_str().unwrap().starts_with('L'));
            assert!(!d.get("severity").as_str().unwrap().is_empty());
            assert!(!d.get("message").as_str().unwrap().is_empty());
        }
        let summary = v.get("summary");
        assert_eq!(
            summary.get("warn").as_u64().unwrap(),
            report.count(Severity::Warn) as u64
        );
        assert_eq!(summary.get("deny").as_u64().unwrap(), 0);
    }
}
