//! Differential property tests for translation validation.
//!
//! Random programs from `codelayout_ir::testgen` are laid out under every
//! `OptimizationSet::paper_series()` configuration and linked; translation
//! validation must accept every resulting image. On top of that, chaining
//! must not *regress* the weighted taken-edge count of the natural layout
//! on execution-derived profiles: the whole point of the pass is to turn
//! hot transfers into fall-throughs.
//!
//! The proptest shim is deterministically seeded, so these are fixed
//! (if broad) regression suites rather than true random sampling.

use codelayout_analysis::{analyze_layout, validate_translation, LintConfig};
use codelayout_core::{LayoutPipeline, LayoutSeries, OptimizationSet};
use codelayout_ir::link::link;
use codelayout_ir::testgen::{random_program, GenConfig};
use codelayout_ir::{Layout, Program, Terminator};
use codelayout_profile::{PixieCollector, Profile};
use codelayout_vm::{Machine, MachineConfig, NullSink, APP_TEXT_BASE};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const FUEL: u64 = 2_000_000;

/// Collects a real (flow-consistent) profile by executing the program.
fn real_profile(program: &Program) -> Profile {
    let image = Arc::new(link(program, &Layout::natural(program), APP_TEXT_BASE).unwrap());
    let mut m = Machine::new(image, MachineConfig::default());
    let mut pixie = PixieCollector::user(program.blocks.len());
    let report = m.run_hooked(&mut NullSink, &mut pixie, FUEL);
    assert!(report.faults.is_empty());
    pixie.into_profile()
}

/// A random (not necessarily flow-consistent) profile.
fn random_profile(program: &Program, seed: u64) -> Profile {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = Profile::new(program.blocks.len());
    for c in &mut p.block_counts {
        *c = rng.gen_range(0..1000);
    }
    for (bi, b) in program.blocks.iter().enumerate() {
        for s in b.term.successors() {
            p.edge_counts
                .insert((bi as u32, s.0), rng.gen_range(0..500));
        }
    }
    p
}

/// Profile weight flowing over edges that the layout does *not* realize as
/// fall-throughs. Jump-table, return and halt successors always count:
/// those transfers are never sequential regardless of placement.
fn taken_edge_weight(program: &Program, profile: &Profile, layout: &Layout) -> u64 {
    let mut total = 0;
    for (i, &b) in layout.order.iter().enumerate() {
        let next = layout.order.get(i + 1).copied();
        let term = &program.block(b).term;
        let sequential_ok = matches!(term, Terminator::Jump(_) | Terminator::Branch { .. });
        let mut seen = Vec::new();
        for t in term.successors() {
            if seen.contains(&t) {
                continue;
            }
            seen.push(t);
            if !(sequential_ok && next == Some(t)) {
                total += profile.edge_count(b, t);
            }
        }
    }
    total
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every paper-series layout of a random program — built under an
    /// adversarial random profile — links to an image that translation
    /// validation proves equivalent to the source CFG.
    #[test]
    fn paper_series_layouts_validate(seed in 0u64..10_000, pseed in 0u64..1_000) {
        let program = random_program(seed, &GenConfig::default());
        let profile = random_profile(&program, pseed);
        let pipe = LayoutPipeline::new(&program, &profile);
        for (name, set) in OptimizationSet::paper_series() {
            let layout = pipe.build(set);
            let image = link(&program, &layout, APP_TEXT_BASE)
                .unwrap_or_else(|e| panic!("seed {seed}/{pseed} {name}: link failed: {e}"));
            let report = validate_translation(&program, &layout, &image)
                .unwrap_or_else(|e| panic!("seed {seed}/{pseed} {name}: {e}"));
            prop_assert_eq!(report.blocks, program.blocks.len());
        }
    }

    /// Every layout series — the paper's six plus hot/cold, CFA, ext-TSP
    /// and Codestitcher — must pass translation validation AND the lint
    /// battery with zero deny findings, under adversarial random
    /// profiles. Each series is linted against its own claims
    /// (`LayoutSeries::lint_set`); warn/info findings are allowed, denies
    /// are not.
    #[test]
    fn all_series_validate_and_lint_clean(seed in 0u64..10_000, pseed in 0u64..1_000) {
        let program = random_program(seed, &GenConfig::default());
        let profile = random_profile(&program, pseed);
        let pipe = LayoutPipeline::new(&program, &profile);
        for series in LayoutSeries::all() {
            let layout = pipe.build_series(series);
            let image = link(&program, &layout, APP_TEXT_BASE)
                .unwrap_or_else(|e| panic!("seed {seed}/{pseed} {series}: link failed: {e}"));
            validate_translation(&program, &layout, &image)
                .unwrap_or_else(|e| panic!("seed {seed}/{pseed} {series}: {e}"));
            let report = analyze_layout(
                &program,
                &profile,
                &layout,
                &image,
                &LintConfig::new(series.lint_set()),
            );
            prop_assert!(
                !report.has_deny(),
                "seed {}/{} {}: deny findings:\n{}",
                seed, pseed, series, report.render_text()
            );
        }
    }

    /// Under an execution-derived profile, the chained layout never takes
    /// *more* weighted edges than the natural layout.
    #[test]
    fn chaining_never_regresses_taken_weight(seed in 0u64..10_000) {
        let program = random_program(seed, &GenConfig::default());
        let profile = real_profile(&program);
        let natural = Layout::natural(&program);
        let chained = LayoutPipeline::new(&program, &profile).build(OptimizationSet::CHAIN);
        let w_nat = taken_edge_weight(&program, &profile, &natural);
        let w_chn = taken_edge_weight(&program, &profile, &chained);
        prop_assert!(
            w_chn <= w_nat,
            "seed {}: chained layout takes weight {} > natural {}",
            seed, w_chn, w_nat
        );
    }
}
