//! Differential property tests for the static-analysis stack.
//!
//! Random programs from `codelayout_ir::testgen` check the dominator
//! tree against a naive reachability oracle (dominance by definition:
//! `d` dominates `w` iff deleting `d` disconnects `w` from the
//! procedure entry), and the static Ball–Larus-style profile estimate
//! against the profile crate's flow-conservation validator plus
//! determinism across runs.
//!
//! The proptest shim is deterministically seeded, so these are fixed
//! (if broad) regression suites rather than true random sampling.

use codelayout_analysis::{estimate_static_profile, DomTree, SourceCfg, STATIC_ENTRY_COUNT};
use codelayout_ir::testgen::{random_program, GenConfig};
use codelayout_ir::{BlockId, Program};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Blocks of `proc_index`'s procedure reachable from its entry when the
/// block `removed` (if any) is deleted from the graph — the textbook
/// dominance oracle, intra-procedural edges only.
fn reachable_without(
    program: &Program,
    cfg: &SourceCfg,
    entry: BlockId,
    removed: Option<BlockId>,
) -> Vec<bool> {
    let owner = program.owner_of_blocks();
    let mut seen = vec![false; program.blocks.len()];
    if removed == Some(entry) {
        return seen;
    }
    let mut stack = vec![entry];
    seen[entry.index()] = true;
    while let Some(b) = stack.pop() {
        for &s in &cfg.succs[b.index()] {
            if owner[s.index()] == owner[b.index()] && removed != Some(s) && !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
    }
    seen
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `DomTree::dominates` agrees with the naive cut-vertex oracle on
    /// every intra-procedural block pair of a random program, and
    /// reachability agrees with plain BFS.
    #[test]
    fn dominators_match_reachability_oracle(seed in 0u64..10_000) {
        let program = random_program(seed, &GenConfig::default());
        let cfg = SourceCfg::of(&program);
        let dom = DomTree::compute(&program, &cfg);
        let owner = program.owner_of_blocks();
        for proc in &program.procs {
            let base = reachable_without(&program, &cfg, proc.entry, None);
            for bi in 0..program.blocks.len() {
                let b = BlockId(u32::try_from(bi).unwrap());
                if owner[bi] != owner[proc.entry.index()] {
                    continue;
                }
                prop_assert_eq!(
                    dom.is_reachable(b), base[bi],
                    "seed {}: reachability of {} diverged", seed, b
                );
            }
            for di in 0..program.blocks.len() {
                let d = BlockId(u32::try_from(di).unwrap());
                if owner[di] != owner[proc.entry.index()] || !base[di] {
                    continue;
                }
                let cut = reachable_without(&program, &cfg, proc.entry, Some(d));
                for wi in 0..program.blocks.len() {
                    let w = BlockId(u32::try_from(wi).unwrap());
                    if owner[wi] != owner[proc.entry.index()] {
                        continue;
                    }
                    // d dominates w iff w is reachable at all but not
                    // once d is deleted (reflexivity falls out: deleting
                    // d unreaches d itself).
                    let want = base[wi] && !cut[wi];
                    prop_assert_eq!(
                        dom.dominates(d, w), want,
                        "seed {}: dominates({}, {}) diverged from the oracle", seed, d, w
                    );
                }
            }
        }
    }

    /// The static profile estimate is exactly flow-conserving: every
    /// block's count equals its incoming edge + call mass (with the
    /// program entry's `STATIC_ENTRY_COUNT` slack), per the profile
    /// crate's validator — the same check exact measured profiles pass.
    /// Outgoing edge mass never exceeds the block's own count.
    #[test]
    fn static_estimates_conserve_flow(seed in 0u64..10_000) {
        let program = random_program(seed, &GenConfig::default());
        let profile = estimate_static_profile(&program);
        let violations = profile.flow_violations(&program, STATIC_ENTRY_COUNT);
        prop_assert!(violations.is_empty(), "seed {seed}: violations: {violations:?}");
        let entry = program.procs[program.entry.index()].entry;
        prop_assert!(
            profile.block_count(entry) >= STATIC_ENTRY_COUNT,
            "seed {seed}: program entry lost its seed mass"
        );
        let mut outflow: BTreeMap<u32, u64> = BTreeMap::new();
        for (&(from, _), &w) in &profile.edge_counts {
            *outflow.entry(from).or_insert(0) += w;
        }
        for (&from, &out) in &outflow {
            let c = profile.block_counts[from as usize];
            prop_assert!(
                out <= c,
                "seed {seed}: block {from} emits {out} > its count {c}"
            );
        }
    }

    /// Two independent estimates of the same program are identical —
    /// the propagation is integer fixed-point with no iteration-order
    /// dependence, so layouts built from it are reproducible.
    #[test]
    fn static_estimates_are_deterministic(seed in 0u64..10_000) {
        let program = random_program(seed, &GenConfig::default());
        let a = estimate_static_profile(&program);
        let b = estimate_static_profile(&program);
        prop_assert_eq!(&a.block_counts, &b.block_counts);
        let edges = |p: &codelayout_profile::Profile| -> BTreeMap<(u32, u32), u64> {
            p.edge_counts.iter().map(|(&k, &v)| (k, v)).collect()
        };
        let calls = |p: &codelayout_profile::Profile| -> BTreeMap<(u32, u32), u64> {
            p.call_counts.iter().map(|(&k, &v)| (k, v)).collect()
        };
        prop_assert_eq!(edges(&a), edges(&b));
        prop_assert_eq!(calls(&a), calls(&b));
    }
}
