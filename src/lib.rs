//! # codelayout
//!
//! A production-quality reproduction of *"Code Layout Optimizations for
//! Transaction Processing Workloads"* (Ramirez, Barroso, Gharachorloo, Cohn,
//! Larriba-Pey, Lowney, Valero — ISCA 2001).
//!
//! This facade crate re-exports the whole toolkit:
//!
//! * [`ir`] — program IR, builder and linker (the "executable" substrate);
//! * [`vm`] — deterministic multi-process virtual machine and trace sinks;
//! * [`profile`] — Pixie-style exact and DCPI-style sampled profilers;
//! * [`opt`] — the paper's contribution: basic-block chaining, fine-grain
//!   procedure splitting and Pettis–Hansen procedure ordering (plus the
//!   hot/cold and CFA variants discussed in the paper);
//! * [`memsim`] — instruction cache, iTLB and unified L2 simulators with the
//!   paper's locality metric collectors;
//! * [`oltp`] — a miniature TPC-B style transaction-processing engine and
//!   synthetic kernel, written in the IR, standing in for Oracle on Alpha;
//! * [`timing`] — an in-order timing model for end-to-end cycle estimates.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every reproduced figure.
//!
//! ## Quickstart
//!
//! ```no_run
//! use codelayout::prelude::*;
//!
//! // Build the OLTP workload, profile it, optimize the layout, compare.
//! let scenario = codelayout::oltp::Scenario::quick();
//! let study = codelayout::oltp::build_study(&scenario);
//! # let _ = study;
//! ```

pub use codelayout_core as opt;
pub use codelayout_ir as ir;
pub use codelayout_memsim as memsim;
pub use codelayout_oltp as oltp;
pub use codelayout_profile as profile;
pub use codelayout_timing as timing;
pub use codelayout_vm as vm;

/// Commonly used items, glob-importable.
pub mod prelude {
    pub use codelayout_core::{LayoutPipeline, OptimizationSet};
    pub use codelayout_ir::{
        BinOp, BlockId, Cond, Image, Instr, Layout, MemSpace, Operand, ProcBuilder, ProcId,
        Program, ProgramBuilder, Reg, Terminator,
    };
    pub use codelayout_memsim::{CacheConfig, ICacheSim};
    pub use codelayout_profile::Profile;
    pub use codelayout_vm::{Machine, MachineConfig, TraceSink};
}
