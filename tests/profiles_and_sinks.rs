//! Cross-crate checks on profiling modes and trace-sink composition.

use codelayout::memsim::{
    AccessClass, CacheConfig, ICacheSim, MemoryHierarchy, StreamFilter, SweepSink, SweepSpec,
};
use codelayout::oltp::{build_study, Scenario};
use codelayout::opt::{LayoutPipeline, OptimizationSet};
use codelayout::profile::estimate_edges_from_blocks;
use codelayout::vm::{FetchRecord, RecordingSink, TraceSink};

#[test]
fn sweep_agrees_with_single_cache_on_same_trace() {
    let study = build_study(&Scenario::quick());
    let image = study.image(OptimizationSet::BASE);
    let mut rec = RecordingSink::default();
    let out = study.run_measured(&image, &study.base_kernel_image, &mut rec);
    out.assert_correct();

    let cfg = CacheConfig::new(32 * 1024, 128, 2);
    let spec = SweepSpec::grid()
        .size_kb(32)
        .line_b(128)
        .ways(2)
        .filter(StreamFilter::UserOnly);
    let mut sweep = SweepSink::from_spec(&spec);
    let mut single = ICacheSim::new(cfg);
    for r in &rec.fetches {
        sweep.fetch(*r);
        if !r.kernel {
            single.access(r.addr, AccessClass::from_kernel_flag(r.kernel));
        }
    }
    assert_eq!(sweep.results()[0].stats.misses, single.stats().misses);
    assert_eq!(sweep.results()[0].stats.accesses, single.stats().accesses);
}

#[test]
fn user_plus_kernel_filters_partition_the_stream() {
    let study = build_study(&Scenario::quick());
    let image = study.image(OptimizationSet::BASE);
    let mut rec = RecordingSink::default();
    study
        .run_measured(&image, &study.base_kernel_image, &mut rec)
        .assert_correct();
    let user = rec.fetches.iter().filter(|r| !r.kernel).count();
    let kernel = rec.fetches.iter().filter(|r| r.kernel).count();
    assert!(user > 0 && kernel > 0);
    assert_eq!(user + kernel, rec.fetches.len());
}

#[test]
fn sampled_profile_produces_a_working_layout() {
    // DCPI-mode: block counts from sampling, edges estimated, layout built;
    // semantics must hold and misses should still drop vs base.
    let sc = Scenario::quick();
    let study = build_study(&sc);

    // Build an estimated profile from the exact one's block counts (the
    // estimation path is what DCPI-mode uses).
    let est = estimate_edges_from_blocks(&study.app.program, &study.profile.block_counts);
    let pipe = LayoutPipeline::new(&study.app.program, &est);
    let layout = pipe.build(OptimizationSet::ALL);
    codelayout::ir::verify_layout(&study.app.program, &layout).unwrap();

    let image = std::sync::Arc::new(
        codelayout::ir::link::link(&study.app.program, &layout, codelayout::vm::APP_TEXT_BASE)
            .unwrap(),
    );
    let run = |img: &std::sync::Arc<codelayout::ir::Image>| {
        let spec = SweepSpec::grid()
            .size_kb(16)
            .line_b(128)
            .ways(2)
            .cpus(sc.num_cpus)
            .filter(StreamFilter::UserOnly);
        let mut sweep = SweepSink::from_spec(&spec);
        let out = study.run_measured(img, &study.base_kernel_image, &mut sweep);
        out.assert_correct();
        (sweep.results()[0].stats.misses, out.invariants)
    };
    let (base_misses, base_inv) = run(&study.image(OptimizationSet::BASE));
    let (est_misses, est_inv) = run(&image);
    assert_eq!(base_inv, est_inv);
    assert!(
        est_misses < base_misses,
        "estimated-profile layout {est_misses} should beat base {base_misses}"
    );
}

#[test]
fn hierarchy_l2_misses_bounded_by_l1_misses() {
    let study = build_study(&Scenario::quick());
    let image = study.image(OptimizationSet::BASE);
    let mut h = MemoryHierarchy::new(codelayout::memsim::HierarchyConfig::simos_base(1));
    study
        .run_measured(&image, &study.base_kernel_image, &mut h)
        .assert_correct();
    let s = h.stats();
    assert!(s.l2_instr_misses <= s.l1i_misses);
    assert!(s.l2_data_misses <= s.l1d_misses);
    assert!(s.fetches > 0 && s.data_accesses > 0);
    assert!(s.itlb_misses > 0);
}

#[test]
fn per_cpu_records_stay_in_range() {
    let sc = Scenario {
        num_cpus: 2,
        processes_per_cpu: 2,
        ..Scenario::quick()
    };
    let study = build_study(&sc);
    let image = study.image(OptimizationSet::BASE);
    struct CpuCheck(u8);
    impl TraceSink for CpuCheck {
        fn fetch(&mut self, rec: FetchRecord) {
            assert!(rec.cpu < self.0, "cpu {} out of range", rec.cpu);
            // Static assignment: pid % ncpus == cpu.
            assert_eq!(rec.pid % self.0, rec.cpu);
        }
    }
    let mut sink = CpuCheck(2);
    study
        .run_measured(&image, &study.base_kernel_image, &mut sink)
        .assert_correct();
}
