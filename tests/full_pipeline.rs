//! End-to-end integration tests across all crates: workload generation,
//! profiling, layout optimization, simulation and invariant checking.

use codelayout::memsim::{SequenceProfiler, StreamFilter, SweepSink, SweepSpec};
use codelayout::oltp::{build_study, Scenario};
use codelayout::opt::OptimizationSet;
use codelayout::vm::{NullSink, TeeSink};

fn misses_at(study: &codelayout::oltp::Study, set: OptimizationSet, kb: u64) -> (u64, f64) {
    let image = study.image(set);
    let mut sweep = SweepSink::from_spec(
        &SweepSpec::grid()
            .size_kb(kb)
            .line_b(128)
            .ways(2)
            .cpus(study.scenario.num_cpus)
            .filter(StreamFilter::UserOnly),
    );
    let mut seq = SequenceProfiler::new(StreamFilter::UserOnly);
    let mut sink = TeeSink(&mut sweep, &mut seq);
    let out = study.run_measured(&image, &study.base_kernel_image, &mut sink);
    out.assert_correct();
    (
        sweep.results()[0].stats.misses,
        seq.finish().average_length(),
    )
}

#[test]
fn optimization_reduces_misses_and_lengthens_runs() {
    let study = build_study(&Scenario::quick());
    // A cache small enough that the quick workload's footprint stresses it.
    let (base_misses, base_seq) = misses_at(&study, OptimizationSet::BASE, 16);
    let (opt_misses, opt_seq) = misses_at(&study, OptimizationSet::ALL, 16);
    assert!(
        opt_misses < base_misses,
        "optimized {opt_misses} >= base {base_misses}"
    );
    assert!(
        opt_seq > base_seq,
        "sequence length must grow: {base_seq} -> {opt_seq}"
    );
}

#[test]
fn combined_optimization_dominates_each_alone() {
    // Scale-robust version of the paper's Figure 7 relationships: both
    // single optimizations beat the baseline, and the full pipeline is at
    // least as good as either alone. (The paper-scale relationship —
    // chaining ≫ ordering alone — is validated by the `fig07` experiment,
    // which runs at full workload scale.)
    let study = build_study(&Scenario::quick());
    // A 4 KB cache keeps even the quick workload capacity-bound.
    let (base, _) = misses_at(&study, OptimizationSet::BASE, 4);
    let (porder, _) = misses_at(&study, OptimizationSet::PORDER, 4);
    let (chain, _) = misses_at(&study, OptimizationSet::CHAIN, 4);
    let (all, _) = misses_at(&study, OptimizationSet::ALL, 4);
    assert!(chain < base, "chain {chain} vs base {base}");
    assert!(porder < base, "porder {porder} vs base {base}");
    assert!(all <= chain, "all {all} vs chain {chain}");
    assert!(all <= porder, "all {all} vs porder {porder}");
}

#[test]
fn optimized_kernel_image_preserves_correctness() {
    let study = build_study(&Scenario::quick());
    let kopt = study.kernel_image(OptimizationSet::ALL);
    let base_app = study.image(OptimizationSet::BASE);
    let reference = study.run_measured(&base_app, &study.base_kernel_image, &mut NullSink);
    reference.assert_correct();
    let with_kopt = study.run_measured(&base_app, &kopt, &mut NullSink);
    with_kopt.assert_correct();
    // Transaction effects are serial-determined, so the database state is
    // identical even though the kernel image (and thus scheduling detail)
    // changed.
    assert_eq!(reference.invariants, with_kopt.invariants);
}

#[test]
fn study_build_is_deterministic() {
    let a = build_study(&Scenario::quick());
    let b = build_study(&Scenario::quick());
    assert_eq!(a.profile, b.profile);
    assert_eq!(a.kernel_profile, b.kernel_profile);
    assert_eq!(a.app.program, b.app.program);
    assert_eq!(
        a.layout(OptimizationSet::ALL),
        b.layout(OptimizationSet::ALL)
    );
}

#[test]
fn text_shrinks_with_chaining() {
    // Chaining eliminates unconditional branches: the linked image gets
    // smaller, never bigger.
    let study = build_study(&Scenario::quick());
    let base = study.image(OptimizationSet::BASE);
    let chained = study.image(OptimizationSet::CHAIN);
    assert!(chained.text_bytes() <= base.text_bytes());
}
