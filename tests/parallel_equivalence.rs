//! Serial-equivalence of the parallel sweep engines.
//!
//! The contract under test: recording a workload's fetch stream once
//! and replaying it through [`ParallelSweep`] produces **bit-identical**
//! statistics to the serial [`SweepSink`]s that observed the live run —
//! for every paper layout tried, every stream filter, any worker
//! thread count, and **both** replay engines (the direct
//! per-configuration simulators and the single-pass stack-distance
//! profiler). This is the property that lets the experiment harness
//! swap its live grid simulations for parallel stack-distance replay
//! without changing a single figure.

use codelayout::memsim::{
    ParallelSweep, StreamFilter, SweepCell, SweepEngine, SweepSink, SweepSpec,
};
use codelayout::oltp::{build_study, Scenario};
use codelayout::opt::OptimizationSet;
use codelayout::vm::{TeeSink, TraceBuffer};

/// A reduced OLTP scenario with more than one CPU, so the per-CPU cache
/// sharding (`cpu % num_cpus`) is actually exercised.
fn small_multicpu_scenario() -> Scenario {
    Scenario {
        num_cpus: 2,
        ..Scenario::quick()
    }
}

#[test]
fn parallel_sweep_is_bit_identical_to_live_serial_sinks() {
    let scenario = small_multicpu_scenario();
    let study = build_study(&scenario);
    let num_cpus = scenario.num_cpus;

    let grids: [SweepSpec; 3] = [
        SweepSpec::paper_grid(1)
            .cpus(num_cpus)
            .filter(StreamFilter::UserOnly),
        SweepSpec::paper_grid(4).cpus(num_cpus),
        SweepSpec::paper_grid(2)
            .cpus(num_cpus)
            .filter(StreamFilter::KernelOnly),
    ];

    let layouts = ["base", "chain", "chain+porder", "all"];
    for name in layouts {
        let set = OptimizationSet::paper_series()
            .into_iter()
            .find(|(n, _)| *n == name)
            .map(|(_, s)| s)
            .unwrap_or_else(|| panic!("unknown paper layout {name}"));
        let image = study.image(set);

        // Live pass: serial sweeps observe the run directly while the
        // trace buffer records the same stream.
        let mut s0 = SweepSink::from_spec(&grids[0]);
        let mut s1 = SweepSink::from_spec(&grids[1]);
        let mut s2 = SweepSink::from_spec(&grids[2]);
        let mut tee = TeeSink(
            TraceBuffer::fetch_only(),
            TeeSink(&mut s0, TeeSink(&mut s1, &mut s2)),
        );
        let outcome = study.run_measured(&image, &study.base_kernel_image, &mut tee);
        outcome.assert_correct();
        let trace = tee.0.freeze();
        assert!(!trace.is_empty(), "{name}: trace must record the run");

        let expected: Vec<Vec<SweepCell>> = vec![s0.results(), s1.results(), s2.results()];
        // Spot-check the expectation is non-trivial.
        assert!(
            expected[0].iter().any(|c| c.stats.misses > 0),
            "{name}: live sweep saw no misses — scenario too small to test anything"
        );

        for (threads, engine) in [
            (1usize, SweepEngine::Direct),
            (2, SweepEngine::Direct),
            (7, SweepEngine::Direct),
            (1, SweepEngine::Stack),
            (2, SweepEngine::Stack),
            (7, SweepEngine::Stack),
        ] {
            let got = ParallelSweep::new(threads)
                .with_engine(engine)
                .run(&trace, &grids);
            // SweepCell's PartialEq covers config and every stats field
            // (accesses, misses, misses_by_class, displaced); compare
            // field-by-field anyway so a failure names the culprit.
            for (g, (got_cells, exp_cells)) in got.iter().zip(expected.iter()).enumerate() {
                assert_eq!(got_cells.len(), exp_cells.len());
                for (a, b) in got_cells.iter().zip(exp_cells.iter()) {
                    let eng = engine.label();
                    assert_eq!(
                        a.config, b.config,
                        "{name} grid {g} threads {threads} {eng}"
                    );
                    let ctx = format!(
                        "{name} grid {g} config {:?} threads {threads} engine {eng}",
                        a.config
                    );
                    assert_eq!(a.stats.accesses, b.stats.accesses, "accesses: {ctx}");
                    assert_eq!(a.stats.misses, b.stats.misses, "misses: {ctx}");
                    assert_eq!(
                        a.stats.misses_by_class, b.stats.misses_by_class,
                        "misses_by_class: {ctx}"
                    );
                    assert_eq!(a.stats.displaced, b.stats.displaced, "displaced: {ctx}");
                }
                assert_eq!(
                    got_cells,
                    exp_cells,
                    "{name} grid {g} threads {threads} engine {}",
                    engine.label()
                );
            }
        }
    }
}

#[test]
fn replaying_the_same_trace_twice_is_deterministic() {
    let scenario = small_multicpu_scenario();
    let study = build_study(&scenario);
    let image = study.image(OptimizationSet::ALL);
    let mut buf = TraceBuffer::fetch_only();
    study
        .run_measured(&image, &study.base_kernel_image, &mut buf)
        .assert_correct();
    let trace = buf.freeze();
    let jobs = [SweepSpec::paper_grid(2).cpus(scenario.num_cpus)];
    let sweeper = ParallelSweep::new(3);
    assert_eq!(sweeper.run(&trace, &jobs), sweeper.run(&trace, &jobs));
}
