//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so this shim replaces
//! the real `serde` with the minimal surface the workspace actually
//! uses: the `Serialize`/`Deserialize` *names* — as marker traits and as
//! derive macros. All real serialization in the workspace goes through
//! the `serde_json` shim's explicit [`Value`]-construction API; nothing
//! dispatches through these traits, so they carry no methods.
//!
//! If a future change needs reflective serialization, either extend the
//! `serde_json` shim with explicit conversions (preferred, keeps the
//! dependency surface auditable) or vendor the real serde.
//!
//! [`Value`]: https://docs.rs/serde_json/latest/serde_json/enum.Value.html

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize {}
