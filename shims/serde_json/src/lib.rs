//! Offline stand-in for `serde_json`.
//!
//! Unlike the `serde` shim (which is a pure marker), this crate is a
//! small but *real* JSON implementation: an insertion-ordered
//! [`Value`]/[`Map`] model, a [`json!`] macro, a serializer
//! ([`to_string`], [`to_string_pretty`], [`to_writer`]) and a strict
//! recursive-descent parser ([`from_str`], [`from_reader`]). The
//! experiment harness writes every figure through it and the golden
//! regression tests parse the checked-in snapshots back, so printing
//! and parsing must round-trip exactly:
//!
//! * integers stay integers ([`Number`] keeps i64/u64/f64 apart, and
//!   floats always print with a `.` or exponent so they re-parse as
//!   floats);
//! * object key order is insertion order, preserved through parse.
//!
//! Non-finite floats are rejected at serialization time, matching
//! serde_json.

use std::fmt;
use std::io;

/// Error type for serialization and parsing failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Wraps a message; also usable by callers decoding a [`Value`]
    /// into their own structures (the moral equivalent of
    /// `serde::de::Error::custom`).
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// A JSON number: integer representations are kept exact.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Negative integers (and any value built from a signed negative).
    I64(i64),
    /// Non-negative integers.
    U64(u64),
    /// Floating-point values (always finite once serialized).
    F64(f64),
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        use Number::*;
        match (*self, *other) {
            (I64(a), I64(b)) => a == b,
            (U64(a), U64(b)) => a == b,
            (F64(a), F64(b)) => a == b,
            (I64(a), U64(b)) | (U64(b), I64(a)) => a >= 0 && a as u64 == b,
            // Integer and float representations are distinct on purpose:
            // printing keeps them apart, so equality does too.
            _ => false,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::I64(v) => write!(f, "{v}"),
            Number::U64(v) => write!(f, "{v}"),
            Number::F64(v) => {
                let s = format!("{v}");
                if s.contains('.') || s.contains('e') || s.contains('E') {
                    f.write_str(&s)
                } else {
                    // Keep the float-ness visible so parsing round-trips.
                    write!(f, "{s}.0")
                }
            }
        }
    }
}

/// An insertion-ordered string → [`Value`] map (JSON object).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty object.
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts a key, replacing (in place) any existing entry.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks a key up.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether a key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the object has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (see [`Number`]).
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Map),
}

impl Value {
    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a u64, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(v)) => Some(*v),
            Value::Number(Number::I64(v)) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as an i64, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I64(v)) => Some(*v),
            Value::Number(Number::U64(v)) if *v <= i64::MAX as u64 => Some(*v as i64),
            _ => None,
        }
    }

    /// The value as an f64 (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::F64(v)) => Some(*v),
            Value::Number(Number::I64(v)) => Some(*v as f64),
            Value::Number(Number::U64(v)) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Indexes into objects by key; returns [`Value::Null`] when absent
    /// or when `self` is not an object.
    pub fn get(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Object(m) => m.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

// ---- conversions ----------------------------------------------------------

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::U64(v as u64)) }
        }
        impl From<&$t> for Value {
            fn from(v: &$t) -> Value { Value::from(*v) }
        }
    )*};
}

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                if v >= 0 {
                    Value::Number(Number::U64(v as u64))
                } else {
                    Value::Number(Number::I64(v as i64))
                }
            }
        }
        impl From<&$t> for Value {
            fn from(v: &$t) -> Value { Value::from(*v) }
        }
    )*};
}

from_unsigned!(u8, u16, u32, u64, usize);
from_signed!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::F64(v))
    }
}

impl From<&f64> for Value {
    fn from(v: &f64) -> Value {
        Value::from(*v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::F64(v as f64))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&bool> for Value {
    fn from(v: &bool) -> Value {
        Value::Bool(*v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<&&str> for Value {
    fn from(v: &&str) -> Value {
        Value::String((*v).to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Value {
        Value::Object(m)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>> From<&Vec<T>> for Value {
    fn from(v: &Vec<T>) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>, const N: usize> From<[T; N]> for Value {
    fn from(v: [T; N]) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>, const N: usize> From<&[T; N]> for Value {
    fn from(v: &[T; N]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        match v {
            Some(x) => x.into(),
            None => Value::Null,
        }
    }
}

// ---- serialization --------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, pretty: bool, depth: usize) -> Result<(), Error> {
    let indent = |out: &mut String, d: usize| {
        if pretty {
            out.push('\n');
            for _ in 0..d {
                out.push_str("  ");
            }
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => {
            if let Number::F64(f) = n {
                if !f.is_finite() {
                    return Err(Error::new("non-finite float cannot be serialized"));
                }
            }
            out.push_str(&n.to_string());
        }
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
            } else {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    indent(out, depth + 1);
                    write_value(out, item, pretty, depth + 1)?;
                }
                indent(out, depth);
                out.push(']');
            }
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
            } else {
                out.push('{');
                for (i, (k, val)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    indent(out, depth + 1);
                    escape_into(out, k);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    write_value(out, val, pretty, depth + 1)?;
                }
                indent(out, depth);
                out.push('}');
            }
        }
    }
    Ok(())
}

/// Serializes compactly.
///
/// # Errors
/// Fails on non-finite floats.
pub fn to_string(v: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, v, false, 0)?;
    Ok(out)
}

/// Serializes with two-space indentation.
///
/// # Errors
/// Fails on non-finite floats.
pub fn to_string_pretty(v: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, v, true, 0)?;
    Ok(out)
}

/// Serializes compactly into a writer.
///
/// # Errors
/// Fails on non-finite floats or writer errors.
pub fn to_writer<W: io::Write>(mut w: W, v: &Value) -> Result<(), Error> {
    let s = to_string(v)?;
    w.write_all(s.as_bytes())
        .map_err(|e| Error::new(format!("write failed: {e}")))
}

// ---- parsing --------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Value::Null),
            Some(b't') => self.eat_lit("true", Value::Bool(true)),
            Some(b'f') => self.eat_lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let s =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(s, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this
                            // crate's serializer; reject them.
                            let c =
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we consumed.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let s = self
                        .bytes
                        .get(start..end)
                        .and_then(|sl| std::str::from_utf8(sl).ok())
                        .ok_or_else(|| self.err("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if is_float {
            let f: f64 = text.parse().map_err(|_| self.err("bad float"))?;
            Ok(Value::Number(Number::F64(f)))
        } else if let Some(stripped) = text.strip_prefix('-') {
            let _ = stripped;
            let i: i64 = text.parse().map_err(|_| self.err("integer overflow"))?;
            Ok(Value::Number(Number::I64(i)))
        } else {
            let u: u64 = text.parse().map_err(|_| self.err("integer overflow"))?;
            Ok(Value::Number(Number::U64(u)))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{', "expected '{'")?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Parses a JSON document.
///
/// # Errors
/// Fails on malformed JSON or trailing garbage.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Reads a full JSON document from a reader.
///
/// # Errors
/// Fails on I/O errors or malformed JSON.
pub fn from_reader<R: io::Read>(mut r: R) -> Result<Value, Error> {
    let mut s = String::new();
    r.read_to_string(&mut s)
        .map_err(|e| Error::new(format!("read failed: {e}")))?;
    from_str(&s)
}

// ---- json! macro ----------------------------------------------------------

/// Builds a [`Value`] from JSON-ish syntax: object literals with string
/// keys, array literals, `null`, and arbitrary Rust expressions
/// convertible via `Into<Value>`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {{
        #[allow(clippy::vec_init_then_push)]
        let items = {
            let mut items: Vec<$crate::Value> = Vec::new();
            $crate::json_array_internal!(items, $($tt)*);
            items
        };
        $crate::Value::Array(items)
    }};
    ({ $($tt:tt)* }) => {{
        let mut map = $crate::Map::new();
        $crate::json_object_internal!(map, $($tt)*);
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

/// Internal: munches `key: value` pairs of [`json!`] object bodies.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_internal {
    ($map:ident $(,)?) => {};
    ($map:ident, $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!({ $($inner)* }));
        $crate::json_object_internal!($map $(, $($rest)*)?);
    };
    ($map:ident, $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!([ $($inner)* ]));
        $crate::json_object_internal!($map $(, $($rest)*)?);
    };
    ($map:ident, $key:literal : null $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::Value::Null);
        $crate::json_object_internal!($map $(, $($rest)*)?);
    };
    ($map:ident, $key:literal : $value:expr $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::Value::from($value));
        $crate::json_object_internal!($map $(, $($rest)*)?);
    };
}

/// Internal: munches elements of [`json!`] array bodies.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array_internal {
    ($items:ident $(,)?) => {};
    ($items:ident, $($tt:tt)*) => { $crate::json_array_internal!($items $($tt)*); };
    ($items:ident { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $items.push($crate::json!({ $($inner)* }));
        $crate::json_array_internal!($items $(, $($rest)*)?);
    };
    ($items:ident [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $items.push($crate::json!([ $($inner)* ]));
        $crate::json_array_internal!($items $(, $($rest)*)?);
    };
    ($items:ident null $(, $($rest:tt)*)?) => {
        $items.push($crate::Value::Null);
        $crate::json_array_internal!($items $(, $($rest)*)?);
    };
    ($items:ident $value:expr $(, $($rest:tt)*)?) => {
        $items.push($crate::Value::from($value));
        $crate::json_array_internal!($items $(, $($rest)*)?);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_prints() {
        let v = json!({
            "a": 1u64,
            "b": [1u64, 2u64],
            "c": {"nested": true},
            "s": "hi",
            "f": 1.0,
        });
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"a":1,"b":[1,2],"c":{"nested":true},"s":"hi","f":1.0}"#
        );
    }

    #[test]
    fn pretty_round_trips() {
        let v = json!({
            "grid": [{"size_kb": 32u64, "misses": 797u64}],
            "ratio": 35.5,
            "neg": -3i64,
            "label": "64KB/128B/2-way",
            "none": null,
        });
        let s = to_string_pretty(&v).unwrap();
        let back = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_stay_floats() {
        let v = json!(100.0);
        let s = to_string(&v).unwrap();
        assert_eq!(s, "100.0");
        assert_eq!(from_str(&s).unwrap(), v);
        // And integers stay integers.
        assert_eq!(from_str("100").unwrap(), json!(100u64));
        assert_ne!(from_str("100").unwrap(), v);
    }

    #[test]
    fn integer_cross_sign_equality() {
        assert_eq!(from_str("5").unwrap(), Value::from(5i64));
        assert_eq!(from_str("-5").unwrap(), Value::from(-5i64));
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Value::from("a\"b\\c\nd\te\u{1}f");
        let s = to_string(&v).unwrap();
        assert_eq!(from_str(&s).unwrap(), v);
    }

    #[test]
    fn map_preserves_insertion_order() {
        let mut m = Map::new();
        m.insert("z".into(), json!(1u64));
        m.insert("a".into(), json!(2u64));
        let keys: Vec<_> = m.keys().cloned().collect();
        assert_eq!(keys, vec!["z", "a"]);
        let s = to_string(&Value::Object(m)).unwrap();
        assert_eq!(s, r#"{"z":1,"a":2}"#);
        let Value::Object(back) = from_str(&s).unwrap() else {
            panic!("not an object");
        };
        let keys: Vec<_> = back.keys().cloned().collect();
        assert_eq!(keys, vec!["z", "a"]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("1 2").is_err());
        assert!(to_string(&json!(f64::NAN)).is_err());
    }

    #[test]
    fn nested_arrays_from_fixed_arrays() {
        let displaced: [[u64; 3]; 2] = [[1, 2, 3], [4, 5, 6]];
        let v = json!({ "displaced": displaced });
        assert_eq!(to_string(&v).unwrap(), r#"{"displaced":[[1,2,3],[4,5,6]]}"#);
    }
}
