//! Offline stand-in for the `rand` crate.
//!
//! Implements the exact surface this workspace uses — `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer
//! `Range`/`RangeInclusive`, and [`Rng::gen_bool`] — on top of
//! xoshiro256++ seeded through splitmix64. The generator is fully
//! deterministic for a given seed, which is what the workload
//! generators and property tests rely on; it does not match upstream
//! `StdRng`'s stream (upstream is ChaCha-based), only its API.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> T;
}

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive integer
    /// ranges).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        // 53 uniform mantissa bits -> uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic xoshiro256++ generator standing in for `rand`'s
/// `StdRng`.
#[derive(Debug, Clone)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl SeedableRng for Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256PlusPlus { s }
    }
}

impl RngCore for Xoshiro256PlusPlus {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Named RNGs, mirroring `rand::rngs`.
pub mod rngs {
    /// The workspace's standard deterministic generator.
    pub type StdRng = super::Xoshiro256PlusPlus;
}

/// Integer types uniformly sampleable by [`Rng::gen_range`].
/// Widening through i128 handles every primitive width (including
/// u64/i64 full-range spans) with one rejection-sampling core.
pub trait SampleUniform: Copy + PartialOrd {
    /// Lossless widening.
    fn to_i128(self) -> i128;
    /// Narrowing back; the value is always in the source range.
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 { self as i128 }
            fn from_i128(v: i128) -> $t { v as $t }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Generic over T (like upstream rand) so that `gen_range(0..4)` infers
// the literal's type from how the result is used.
impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::from_i128(sample_span(
            rng,
            self.start.to_i128(),
            self.end.to_i128() - 1,
        ))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::from_i128(sample_span(rng, lo.to_i128(), hi.to_i128()))
    }
}

/// Uniform draw from the inclusive span `[lo, hi]` via rejection
/// sampling on 64-bit words (the span never exceeds 2^64 values for
/// primitive integer ranges).
fn sample_span(rng: &mut (impl RngCore + ?Sized), lo: i128, hi: i128) -> i128 {
    let span = (hi - lo + 1) as u128;
    debug_assert!(span <= 1 << 64);
    if span == 0 || span == 1 << 64 {
        // Full 64-bit span: every word is a valid sample.
        return lo + rng.next_u64() as i128;
    }
    let span = span as u64;
    // Largest multiple of `span` that fits in a u64; rejecting words
    // above it removes modulo bias.
    let zone = u64::MAX - (u64::MAX % span + 1) % span;
    loop {
        let word = rng.next_u64();
        if word <= zone {
            return lo + (word % span) as i128;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let x = rng.gen_range(0usize..1);
            assert_eq!(x, 0);
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 buckets should be hit");
    }

    #[test]
    fn gen_bool_edges_and_rate() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
