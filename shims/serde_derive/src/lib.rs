//! Offline stand-in for `serde_derive`.
//!
//! This workspace builds in a hermetic environment with no crates.io
//! access, so the real `serde` stack is replaced by local shims (see
//! `shims/README.md`). Nothing in the workspace performs reflective
//! serialization through serde — all JSON is produced and consumed
//! explicitly through the `serde_json` shim's `Value` type — so the
//! derive macros only need to satisfy the `#[derive(Serialize,
//! Deserialize)]` attributes that remain on public types. Each derive
//! expands to an empty marker-trait impl.
//!
//! The parser is deliberately tiny: it scans the item's top-level tokens
//! for the `struct`/`enum` keyword and takes the following identifier as
//! the type name. Generic derived types are not supported (none exist in
//! this workspace) and cause a compile-time panic rather than silently
//! producing a wrong impl.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name (and rejects generics) from a derive input.
fn type_name(input: TokenStream) -> String {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                let name = match iter.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    other => panic!("serde shim derive: expected type name, found {other:?}"),
                };
                if let Some(TokenTree::Punct(p)) = iter.peek() {
                    if p.as_char() == '<' {
                        panic!(
                            "serde shim derive: generic type `{name}` is not supported; \
                             write the impl by hand"
                        );
                    }
                }
                return name;
            }
        }
    }
    panic!("serde shim derive: no struct/enum found in input");
}

fn marker_impl(input: TokenStream, trait_name: &str) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::{trait_name} for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Derives the shim's empty `Serialize` marker trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Serialize")
}

/// Derives the shim's empty `Deserialize` marker trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Deserialize")
}
