//! Offline stand-in for `criterion`.
//!
//! Provides the API surface `benches/microbench.rs` uses —
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion::benchmark_group`],
//! per-group `measurement_time`/`sample_size`/`throughput`, and
//! [`Bencher::iter`] — backed by a plain wall-clock runner: each
//! benchmark is warmed up once, then timed for `sample_size` samples,
//! and the median per-iteration time (plus derived throughput) is
//! printed. There is no statistical analysis, outlier detection, or
//! HTML report; the numbers are honest medians, good enough for
//! eyeballing regressions in an offline environment.
//!
//! Like real criterion, passing `--bench` (which `cargo bench` does) is
//! accepted; a benchmark name filter as the first free argument is
//! honored with substring matching. `cargo test --benches` runs each
//! benchmark body exactly once in test mode so the benches stay
//! compiling and correct.

use std::time::{Duration, Instant};

/// Throughput annotation used to derive elements/second from the
/// measured time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver, one per `criterion_group!`.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        // `cargo bench` invokes with `--bench`; `cargo test --benches`
        // invokes with `--test`. Any other free argument is a name
        // filter, as with real criterion.
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => {}
                "--test" => test_mode = true,
                s if s.starts_with('-') => {}
                s => filter = Some(s.to_string()),
            }
        }
        Criterion { filter, test_mode }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            measurement_time: Duration::from_secs(3),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Registers a stand-alone benchmark (group of one).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut g = self.benchmark_group(name);
        g.bench_function("", f);
        g.finish();
        self
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    measurement_time: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the target measurement budget (split across samples).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets how many samples to take.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = if name.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, name)
        };
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        if self.criterion.test_mode {
            f(&mut b);
            println!("test-mode ok: {full}");
            return self;
        }
        // Warm-up pass: also calibrates how many iterations fit in one
        // sample slot.
        f(&mut b);
        let warm = b.elapsed.max(Duration::from_nanos(1));
        let slot = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters = (slot / warm.as_secs_f64()).clamp(1.0, 1e9) as u64;
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.iters = iters;
            b.elapsed = Duration::ZERO;
            f(&mut b);
            per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        let line = match self.throughput {
            Some(Throughput::Elements(n)) => format!(
                "{full}: median {} ({:.3} Melem/s, {} samples x {} iters)",
                fmt_time(median),
                n as f64 / median / 1e6,
                self.sample_size,
                iters
            ),
            Some(Throughput::Bytes(n)) => format!(
                "{full}: median {} ({:.3} MiB/s, {} samples x {} iters)",
                fmt_time(median),
                n as f64 / median / (1024.0 * 1024.0),
                self.sample_size,
                iters
            ),
            None => format!(
                "{full}: median {} ({} samples x {} iters)",
                fmt_time(median),
                self.sample_size,
                iters
            ),
        };
        println!("{line}");
        self
    }

    /// Ends the group (printing happens eagerly; this is for API
    /// compatibility).
    pub fn finish(&mut self) {}
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Handed to each benchmark closure; times the closed-over routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it the calibrated number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Groups benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_times_and_filters() {
        let mut c = Criterion {
            filter: Some("keep".into()),
            test_mode: false,
        };
        let mut kept = 0u32;
        let mut skipped = 0u32;
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(2);
            g.measurement_time(Duration::from_millis(1));
            g.throughput(Throughput::Elements(10));
            g.bench_function("keep_this", |b| b.iter(|| kept += 1));
            g.bench_function("drop_this", |b| b.iter(|| skipped += 1));
            g.finish();
        }
        assert!(kept > 0, "filtered-in bench must run");
        assert_eq!(skipped, 0, "filtered-out bench must not run");
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            filter: None,
            test_mode: true,
        };
        let mut runs = 0u32;
        c.bench_function("once", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }
}
