//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] block macro with an optional
//! `#![proptest_config(ProptestConfig::with_cases(N))]` header,
//! test functions whose arguments are drawn from integer
//! `Range`/`RangeInclusive` strategies, and the
//! [`prop_assert!`]/[`prop_assert_eq!`] assertion macros.
//!
//! Differences from real proptest, by design:
//!
//! * cases are drawn from a deterministic per-test RNG (seeded from the
//!   test name), so every run explores the same inputs — there is no
//!   persistence file and no `PROPTEST_*` env handling;
//! * there is no shrinking: a failing case reports the exact inputs in
//!   the panic message instead, which for the pure-integer strategies
//!   used here is just as actionable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Runner configuration; only the case count is meaningful.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test function runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property within a [`proptest!`] body.
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Wraps a failure message.
    pub fn new(msg: String) -> Self {
        TestCaseError { msg }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// A source of values for a [`proptest!`] argument.
pub trait Strategy {
    /// The value type produced.
    type Value: fmt::Debug;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_strategy_for_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Deterministic seed for a test's case stream: FNV-1a over the test
/// name. All cases of one test share one RNG so inputs are independent
/// draws, yet every `cargo test` run sees the identical sequence.
pub fn rng_for_test(name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Declares property tests. See the crate docs for the supported shape.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(config = ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(config = ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Internal: expands each `#[test] fn name(arg in strategy, ...)` into a
/// plain test that loops over sampled cases.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::rng_for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::sample(&$strat, &mut __rng);)*
                let __result: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(__e) = __result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}\n  inputs:{}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __e,
                        format!(
                            concat!("", $(" ", stringify!($arg), " = {:?}"),*),
                            $($arg),*
                        ),
                    );
                }
            }
        }
        $crate::__proptest_impl!(config = ($cfg); $($rest)*);
    };
}

/// Fails the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::new(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::new(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)+),
            )));
        }
    };
}

/// Fails the current case when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__left, __right) = (&$a, &$b);
        if !(*__left == *__right) {
            return ::core::result::Result::Err($crate::TestCaseError::new(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), __left, __right,
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$a, &$b);
        if !(*__left == *__right) {
            return ::core::result::Result::Err($crate::TestCaseError::new(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), format!($($fmt)+), __left, __right,
            )));
        }
    }};
}

/// Fails the current case when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__left, __right) = (&$a, &$b);
        if *__left == *__right {
            return ::core::result::Result::Err($crate::TestCaseError::new(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                __left,
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(
            a in 0u64..100,
            b in -5i32..=5,
            c in 1usize..2,
        ) {
            prop_assert!(a < 100);
            prop_assert!((-5..=5).contains(&b), "b = {}", b);
            prop_assert_eq!(c, 1);
            prop_assert_ne!(a as i64, 1_000);
        }
    }

    proptest! {
        #[test]
        fn default_config_compiles(x in 0u8..255) {
            prop_assert!(x < 255);
        }
    }

    #[test]
    fn rng_is_per_test_deterministic() {
        use rand::RngCore;
        let a = crate::rng_for_test("alpha").next_u64();
        let b = crate::rng_for_test("alpha").next_u64();
        let c = crate::rng_for_test("beta").next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
